"""The zero-copy shared-memory IPC plane of the process backend.

Three promises under test, matching the plane's contract
(:mod:`repro.runtime.shm`):

* **Differential bit-identity** — ``REPRO_IPC=shm`` and
  ``REPRO_IPC=pickle`` produce the exact ``SerialScheduler``
  transcript (assignments, steps, certified bounds), across fixers and
  under injected worker faults.
* **Segment lifecycle** — every created segment is unlinked: after
  crash/hang recovery, after ``certify_recovery``, after ``close()``,
  and at scheduler garbage collection.  No orphaned ``/dev/shm``
  entries, ever.
* **Warm reuse** — a second execute over the same solve re-uses the
  published segment (no re-broadcast) and workers replay cached class
  programs (``worker_warm_hits``).
"""

from __future__ import annotations

import gc
import glob

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import certify_recovery, solve_distributed
from repro.errors import ReproError, SchedulerProtocolError
from repro.faults import FaultPlan
from repro.generators import (
    all_zero_edge_instance,
    all_zero_triple_instance,
    cycle_graph,
    cyclic_triples,
    random_regular_graph,
)
from repro.obs.recorder import recording
from repro.runtime import (
    IPC_MODES,
    ProcessScheduler,
    SerialScheduler,
    ipc_mode,
    live_segment_names,
    set_ipc_mode,
    shm_enabled,
    using_ipc,
)
from repro.runtime.shm import (
    ChunkDescriptor,
    SegmentLayout,
    ShmSession,
    lower_solve,
)

SLOW_SETTINGS = settings(
    deadline=None,
    max_examples=8,
    suppress_health_check=[HealthCheck.too_slow],
)


def shm_entries():
    """The ``/dev/shm`` entries this library could have created."""
    return sorted(glob.glob("/dev/shm/repro_shm_*"))


def fast_scheduler(**kwargs):
    kwargs.setdefault("max_workers", 2)
    kwargs.setdefault("backoff_base", 0.0)
    kwargs.setdefault("deadline", 15.0)
    return ProcessScheduler(**kwargs)


def instance_for(spec):
    family, n, alphabet, seed = spec
    if family == "cycle":
        return all_zero_edge_instance(cycle_graph(n), alphabet)
    if family == "regular":
        return all_zero_edge_instance(
            random_regular_graph(n, 3, seed=seed), alphabet
        )
    return all_zero_triple_instance(n, cyclic_triples(n), alphabet)


def assert_identical(reference, candidate):
    assert (
        candidate.fixing.assignment.as_dict()
        == reference.fixing.assignment.as_dict()
    )
    assert candidate.fixing.steps == reference.fixing.steps
    assert (
        candidate.fixing.certified_bounds
        == reference.fixing.certified_bounds
    )


def specs():
    cycles = st.tuples(
        st.integers(min_value=3, max_value=14),
        st.integers(min_value=3, max_value=5),
    ).map(lambda t: ("cycle", t[0], t[1], 0))
    regulars = st.tuples(
        st.integers(min_value=4, max_value=7).map(lambda k: 2 * k),
        st.integers(min_value=5, max_value=6),
        st.integers(min_value=0, max_value=3),
    ).map(lambda t: ("regular", t[0], t[1], t[2]))
    triples = st.tuples(
        st.integers(min_value=5, max_value=14),
        st.integers(min_value=5, max_value=6),
    ).map(lambda t: ("triples", t[0], t[1], 0))
    return st.one_of(cycles, regulars, triples)


# ----------------------------------------------------------------------
# Mode plumbing
# ----------------------------------------------------------------------
class TestIpcMode:
    def test_default_is_shm(self):
        assert ipc_mode() in IPC_MODES

    def test_set_and_restore(self):
        previous = set_ipc_mode("pickle")
        try:
            assert ipc_mode() == "pickle"
            assert not shm_enabled()
        finally:
            set_ipc_mode(previous)

    def test_invalid_mode_rejected(self):
        with pytest.raises(ReproError):
            set_ipc_mode("carrier-pigeon")

    def test_context_manager_restores(self):
        before = ipc_mode()
        with using_ipc("pickle"):
            assert ipc_mode() == "pickle"
        assert ipc_mode() == before

    def test_scheduler_resolves_mode_at_construction(self):
        with using_ipc("pickle"):
            scheduler = ProcessScheduler(max_workers=1)
        # Flipping the ambient mode later must not retarget it.
        assert "ipc=pickle" in scheduler.describe()
        assert "workers=1" in scheduler.describe()

    def test_explicit_ipc_argument_wins(self):
        scheduler = ProcessScheduler(max_workers=1, ipc="pickle")
        assert "ipc=pickle" in scheduler.describe()
        with pytest.raises(ReproError):
            ProcessScheduler(ipc="smoke-signals")

    def test_serial_describe(self):
        assert SerialScheduler().describe() == "serial"


# ----------------------------------------------------------------------
# Differential: shm == pickle == serial (Hypothesis)
# ----------------------------------------------------------------------
@SLOW_SETTINGS
@given(spec=specs())
def test_shm_matches_pickle_and_serial(spec):
    reference = solve_distributed(
        instance_for(spec), scheduler=SerialScheduler()
    )
    for mode in IPC_MODES:
        scheduler = ProcessScheduler(max_workers=2, ipc=mode)
        try:
            candidate = solve_distributed(
                instance_for(spec), scheduler=scheduler
            )
        finally:
            scheduler.close()
        assert_identical(reference, candidate)


@SLOW_SETTINGS
@given(spec=specs(), seed=st.integers(min_value=0, max_value=7))
def test_shm_identical_under_faults_with_clean_segments(spec, seed):
    """The fault-injected leg: recovery is invisible and leak-free."""
    reference = solve_distributed(
        instance_for(spec), scheduler=SerialScheduler()
    )
    plan = FaultPlan(
        seed=seed,
        explicit_chunks=((0, "crash"),),
        slow_rate=0.3,
        slow_seconds=0.001,
    )
    scheduler = fast_scheduler(fault_plan=plan, ipc="shm")
    try:
        candidate = solve_distributed(
            instance_for(spec), scheduler=scheduler
        )
    finally:
        scheduler.close()
    assert_identical(reference, candidate)
    assert live_segment_names() == ()
    assert shm_entries() == []


# ----------------------------------------------------------------------
# Fault legs (explicit, with certification)
# ----------------------------------------------------------------------
class TestShmFaults:
    @pytest.fixture
    def instance_spec(self):
        return ("cycle", 14, 3, 0)

    def test_crash_recovery_certifies(self, instance_spec):
        reference = solve_distributed(
            instance_for(instance_spec), scheduler=SerialScheduler()
        )
        plan = FaultPlan(explicit_chunks=((0, "crash"),))
        scheduler = fast_scheduler(fault_plan=plan, ipc="shm")
        with recording() as recorder:
            try:
                candidate = solve_distributed(
                    instance_for(instance_spec), scheduler=scheduler
                )
            finally:
                scheduler.close()
            events = list(recorder.memory.events)
        assert_identical(reference, candidate)
        kinds = {
            e["event"] for e in events if e["component"] == "runtime"
        }
        assert "fault" in kinds and "retry" in kinds
        assert certify_recovery(events) == []
        assert shm_entries() == []

    def test_hang_recovery_certifies(self, instance_spec):
        reference = solve_distributed(
            instance_for(instance_spec), scheduler=SerialScheduler()
        )
        plan = FaultPlan(
            explicit_chunks=((1, "hang"),), hang_seconds=10.0
        )
        scheduler = fast_scheduler(
            fault_plan=plan, deadline=1.0, ipc="shm"
        )
        with recording() as recorder:
            try:
                candidate = solve_distributed(
                    instance_for(instance_spec), scheduler=scheduler
                )
            finally:
                scheduler.close()
            events = list(recorder.memory.events)
        assert_identical(reference, candidate)
        assert certify_recovery(events) == []
        assert shm_entries() == []

    def test_garbled_result_region_raises(self, instance_spec):
        """A short shared-region write is a protocol error, not a retry."""
        plan = FaultPlan(explicit_chunks=((0, "garble"),))
        scheduler = fast_scheduler(fault_plan=plan, ipc="shm")
        try:
            with pytest.raises(SchedulerProtocolError):
                solve_distributed(
                    instance_for(instance_spec), scheduler=scheduler
                )
        finally:
            scheduler.close()
        assert shm_entries() == []


# ----------------------------------------------------------------------
# Segment lifecycle
# ----------------------------------------------------------------------
class TestSegmentLifecycle:
    def test_close_is_idempotent_and_unlinks(self):
        spec = ("cycle", 10, 3, 0)
        scheduler = ProcessScheduler(max_workers=2, ipc="shm")
        solve_distributed(instance_for(spec), scheduler=scheduler)
        assert len(live_segment_names()) == 1
        scheduler.close()
        scheduler.close()
        assert live_segment_names() == ()
        assert shm_entries() == []

    def test_garbage_collection_reclaims_segment(self):
        spec = ("cycle", 10, 3, 0)
        scheduler = ProcessScheduler(max_workers=2, ipc="shm")
        solve_distributed(instance_for(spec), scheduler=scheduler)
        assert len(live_segment_names()) == 1
        del scheduler
        gc.collect()
        assert live_segment_names() == ()
        assert shm_entries() == []

    def test_pickle_mode_touches_no_segments(self):
        spec = ("cycle", 10, 3, 0)
        scheduler = ProcessScheduler(max_workers=2, ipc="pickle")
        try:
            solve_distributed(instance_for(spec), scheduler=scheduler)
        finally:
            scheduler.close()
        assert live_segment_names() == ()
        assert shm_entries() == []


# ----------------------------------------------------------------------
# Warm reuse across executes
# ----------------------------------------------------------------------
class TestWarmReuse:
    def test_second_execute_reuses_segment_and_warms(self):
        from repro.core.rank2 import Rank2Fixer
        from repro.runtime import plan_for_instance

        instance = all_zero_edge_instance(cycle_graph(16), 3)
        plan = plan_for_instance(instance)
        scheduler = ProcessScheduler(max_workers=2, ipc="shm")
        try:
            scheduler.execute(Rank2Fixer(instance), plan, instance)
            first = dict(scheduler.ipc_stats)
            scheduler.execute(Rank2Fixer(instance), plan, instance)
            second = dict(scheduler.ipc_stats)
        finally:
            scheduler.close()
        assert first["ipc"] == "shm"
        assert first["broadcasts"] == 1
        # Same (plan, instance): the segment is reused verbatim.
        assert second["broadcasts"] == 0
        assert second["generation"] == first["generation"]
        # The second pass replays cached class programs in the workers.
        assert second["worker_warm_hits"] > 0
        assert second["descriptor_bytes"] > 0

    def test_new_solve_rebroadcasts_without_new_segment_when_it_fits(self):
        from repro.core.rank2 import Rank2Fixer
        from repro.runtime import plan_for_instance

        big = all_zero_edge_instance(cycle_graph(16), 3)
        small = all_zero_edge_instance(cycle_graph(12), 3)
        scheduler = ProcessScheduler(max_workers=2, ipc="shm")
        try:
            scheduler.execute(
                Rank2Fixer(big), plan_for_instance(big), big
            )
            first_segment = live_segment_names()
            scheduler.execute(
                Rank2Fixer(small), plan_for_instance(small), small
            )
            second_segment = live_segment_names()
            stats = dict(scheduler.ipc_stats)
        finally:
            scheduler.close()
        assert stats["broadcasts"] == 1
        assert first_segment == second_segment
        assert shm_entries() == []


# ----------------------------------------------------------------------
# Unit coverage: layout, lowering, descriptors
# ----------------------------------------------------------------------
class TestShmUnits:
    def test_layout_offsets_are_aligned_and_ordered(self):
        layout = SegmentLayout(
            num_events=5, pin_width=3, ledger_size=7,
            max_cells=4, max_ops=9, record_width=16, blob_capacity=123,
        )
        offsets = [
            layout.blob_offset, layout.pins_offset, layout.phi_offset,
            layout.roster_offset, layout.results_offset,
            layout.total_bytes,
        ]
        assert offsets == sorted(offsets)
        assert all(offset % 8 == 0 for offset in offsets)

    def test_lower_solve_mirrors_payload_gating(self):
        from repro.core.rank2 import Rank2Fixer
        from repro.runtime import plan_for_instance

        instance = all_zero_edge_instance(cycle_graph(12), 3)
        plan = plan_for_instance(instance)
        Rank2Fixer(instance)  # kernels compile on instance construction
        lowered = lower_solve("rank2", plan, instance)
        assert lowered.kind == "rank2"
        assert len(lowered.parent_classes) == plan.num_classes
        total_cells = sum(
            len(cells) for cells in lowered.parent_classes
        )
        assert total_cells == plan.num_cells
        assert lowered.max_ops >= 1
        assert lowered.record_width >= 16

    def test_session_reuse_is_identity_keyed(self):
        from repro.runtime import plan_for_instance

        instance = all_zero_edge_instance(cycle_graph(10), 3)
        plan = plan_for_instance(instance)
        session = ShmSession()
        try:
            assert session.ensure("rank2", plan, instance) == "segment"
            assert session.ensure("rank2", plan, instance) == "reuse"
            # A different kind over the same objects re-broadcasts.
            assert session.ensure("naive", plan, instance) in (
                "broadcast", "segment"
            )
        finally:
            session.close()
        assert live_segment_names() == ()

    def test_failed_broadcast_is_transactional(self, monkeypatch):
        """A rejected mid-broadcast ensure() must not poison the session.

        The back-to-back-solves hazard of the solve service: request A
        publishes, request B's broadcast raises partway (worker
        rejection, allocation failure), request B is retried.  The
        retry must republish — taking the ``reuse`` fast path against a
        segment whose header generation never advanced would feed warm
        workers a stale generation.
        """
        from repro.runtime import plan_for_instance
        from repro.runtime.shm import H_GENERATION, SharedInstanceSegment

        instance_a = all_zero_edge_instance(cycle_graph(10), 3)
        plan_a = plan_for_instance(instance_a)
        instance_b = all_zero_edge_instance(cycle_graph(14), 3)
        plan_b = plan_for_instance(instance_b)
        session = ShmSession()
        try:
            assert session.ensure("rank2", plan_a, instance_a) == "segment"
            generation = session.generation
            real_publish = SharedInstanceSegment.publish

            def failing_publish(self, blob, gen):
                raise RuntimeError("rejected mid-broadcast")

            monkeypatch.setattr(
                SharedInstanceSegment, "publish", failing_publish
            )
            with pytest.raises(RuntimeError):
                session.ensure("rank2", plan_b, instance_b)
            # Nothing committed: the generation is unchanged and the
            # half-published solve is forgotten.
            assert session.generation == generation

            monkeypatch.setattr(
                SharedInstanceSegment, "publish", real_publish
            )
            # The retried request republishes instead of claiming
            # "reuse" on the poisoned payload ...
            outcome = session.ensure("rank2", plan_b, instance_b)
            assert outcome in ("broadcast", "segment")
            assert session.generation == generation + 1
            # ... and the segment header agrees with the session, so
            # warm workers accept the generation.
            assert (
                int(session.segment.views.header[H_GENERATION])
                == session.generation
            )
            # Back-to-back reuse stays exact after the recovery.
            assert session.ensure("rank2", plan_b, instance_b) == "reuse"
            assert session.ensure("rank2", plan_a, instance_a) in (
                "broadcast", "segment"
            )
        finally:
            session.close()
        assert live_segment_names() == ()

    def test_descriptor_is_tiny(self):
        import pickle

        descriptor = ChunkDescriptor(
            generation=1, class_index=0, start=0, stop=8, attempt=0
        )
        assert len(pickle.dumps(descriptor)) < 200
