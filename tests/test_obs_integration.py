"""Integration tests: the obs layer wired through the library's hot paths."""

from __future__ import annotations

import dataclasses

import pytest

from repro.core import Rank3Fixer, audit_trace, solve, solve_rank2, solve_rank3
from repro.coloring import compute_vertex_coloring
from repro.generators import (
    all_zero_edge_instance,
    all_zero_triple_instance,
    cycle_graph,
    cyclic_triples,
)
from repro.lll import verify_solution
from repro.local_model import BroadcastValue, Network, Simulator
from repro.obs import check_events, recording, uninstall


@pytest.fixture(autouse=True)
def _no_leaked_recorder():
    uninstall()
    yield
    uninstall()


class TestFixerInstrumentation:
    def test_rank3_run_emits_one_fix_event_per_variable_in_trace_order(self):
        instance = all_zero_triple_instance(12, cyclic_triples(12), 5)
        with recording() as recorder:
            result = solve_rank3(instance)
        assert verify_solution(instance, result.assignment).ok
        events = recorder.memory.events
        check_events(events)
        fixes = [
            e
            for e in events
            if e["component"] == "fixer.rank3" and e["event"] == "fix"
        ]
        assert len(fixes) == len(instance.variables) == result.num_steps
        # One event per step, in exactly the order the fixer fixed them.
        assert [e["step"] for e in fixes] == list(range(len(fixes)))
        # The memory sink keeps raw payload objects, so variables match
        # the trace directly (tuples and all).
        assert [e["payload"]["variable"] for e in fixes] == [
            step.variable for step in result.steps
        ]
        # Aggregates match the run.
        assert recorder.counter_value("fixer.rank3", "rank3_fixes") == len(
            fixes
        )
        margins = recorder.histograms[
            ("fixer.rank3", "representability_margin")
        ]
        assert margins.count == len(fixes)
        durations = recorder.span_durations[("fixer.rank3", "fix")]
        assert len(durations) == len(fixes)
        assert all(d > 0 for d in durations)

    def test_rank2_run_emits_fix_events_and_slack_histogram(self):
        instance = all_zero_edge_instance(cycle_graph(8), 3)
        with recording() as recorder:
            result = solve_rank2(instance)
        fixes = [
            e
            for e in recorder.memory.events
            if e["component"] == "fixer.rank2" and e["event"] == "fix"
        ]
        assert len(fixes) == result.num_steps
        assert recorder.histograms[("fixer.rank2", "step_slack")].count == len(
            fixes
        )

    def test_solve_wraps_run_in_solve_span_and_events(self):
        instance = all_zero_triple_instance(9, cyclic_triples(9), 5)
        with recording() as recorder:
            solve(instance)
        events = recorder.memory.events
        kinds = [(e["component"], e["event"]) for e in events]
        assert ("fixer", "solve_start") in kinds
        assert ("fixer", "solve_end") in kinds
        solve_spans = recorder.span_durations[("fixer", "solve")]
        fix_spans = recorder.span_durations[("fixer.rank3", "fix")]
        assert len(solve_spans) == 1
        # The solve span contains every fix span.
        assert solve_spans[0] >= sum(fix_spans)

    def test_pstar_counters_track_edge_updates(self):
        instance = all_zero_triple_instance(9, cyclic_triples(9), 5)
        with recording() as recorder:
            fixer = Rank3Fixer(instance)
            fixer.run()
        # Every rank-3 fix rewrites the triangle's three edges.
        assert recorder.counter_value("pstar", "edge_updates") == 3 * len(
            instance.variables
        )
        assert ("pstar", "edge_phi_sum") in recorder.histograms


class TestSimulatorInstrumentation:
    def test_round_events_mirror_the_legacy_trace_api(self):
        network = Network(cycle_graph(6))
        with recording() as recorder:
            result = Simulator(
                network, BroadcastValue(2), record_trace=True
            ).run()
        rounds = [
            e
            for e in recorder.memory.events
            if e["component"] == "simulator" and e["event"] == "round"
        ]
        assert len(rounds) == result.rounds == len(result.trace)
        for event, legacy in zip(rounds, result.trace):
            assert event["round"] == legacy.round_number
            assert event["payload"]["messages"] == legacy.messages
            assert event["payload"]["active_senders"] == legacy.active_senders
            assert event["payload"]["payload_chars"] == legacy.payload_chars
        assert (
            recorder.counter_value("simulator", "messages")
            == result.messages_delivered
        )
        assert recorder.counter_value("simulator", "rounds") == result.rounds
        complete = [
            e
            for e in recorder.memory.events
            if e["event"] == "run_complete" and e["component"] == "simulator"
        ]
        assert len(complete) == 1
        assert complete[0]["payload"]["rounds"] == result.rounds

    def test_trace_api_unchanged_without_recorder(self):
        network = Network(cycle_graph(6))
        result = Simulator(network, BroadcastValue(2), record_trace=True).run()
        assert len(result.trace) == 2
        assert result.trace[0].payload_chars > 0
        bare = Simulator(network, BroadcastValue(2)).run()
        assert bare.trace == []

    def test_simulation_result_trace_default_is_fresh_list(self):
        from repro.local_model.simulator import SimulationResult

        first = SimulationResult(rounds=0, outputs={}, messages_delivered=0)
        second = SimulationResult(rounds=0, outputs={}, messages_delivered=0)
        assert first.trace == [] and second.trace == []
        first.trace.append("marker")
        assert second.trace == []  # no shared mutable default
        fields = {f.name: f for f in dataclasses.fields(SimulationResult)}
        assert fields["trace"].default_factory is list


class TestColoringInstrumentation:
    def test_phase_counters_match_coloring_result(self):
        network = Network(cycle_graph(8))
        with recording() as recorder:
            result = compute_vertex_coloring(network)
        assert (
            recorder.counter_value("coloring", "linial_rounds")
            == result.linial_rounds
        )
        assert (
            recorder.counter_value("coloring", "reduction_rounds")
            == result.reduction_rounds
        )
        phases = [
            e["payload"]["phase"]
            for e in recorder.memory.events
            if e["component"] == "coloring" and e["event"] == "phase"
        ]
        assert phases[0] == "linial"
        if result.reduction_rounds:
            assert "reduction" in phases
        assert ("coloring", "linial") in recorder.span_durations


class TestAuditInstrumentation:
    def test_clean_audit_emits_ok_report_and_no_discrepancies(self):
        instance = all_zero_triple_instance(9, cyclic_triples(9), 5)
        result = solve_rank3(instance)
        with recording() as recorder:
            report = audit_trace(instance, result)
        assert report.ok
        events = recorder.memory.events
        assert not [e for e in events if e["event"] == "discrepancy"]
        (summary,) = [e for e in events if e["event"] == "report"]
        assert summary["payload"]["ok"] is True
        assert summary["payload"]["steps"] == result.num_steps

    def test_corrupted_trace_emits_discrepancy_events(self):
        instance = all_zero_triple_instance(9, cyclic_triples(9), 5)
        result = solve_rank3(instance)
        # Tamper with one recorded increase so the audit must object.
        tampered_steps = list(result.steps)
        step = tampered_steps[0]
        tampered_steps[0] = dataclasses.replace(
            step, increases=tuple(i + 0.5 for i in step.increases)
        )
        tampered = dataclasses.replace(result, steps=tuple(tampered_steps))
        with recording() as recorder:
            report = audit_trace(instance, tampered)
        assert not report.ok
        discrepancies = [
            e
            for e in recorder.memory.events
            if e["component"] == "audit" and e["event"] == "discrepancy"
        ]
        assert len(discrepancies) == len(report.problems)
        assert recorder.counter_value("audit", "discrepancies") == len(
            report.problems
        )


class TestCliConsumers:
    def test_solve_obs_trace_then_stats_and_trace(self, tmp_path, capsys):
        from repro.cli import main

        path = str(tmp_path / "run.jsonl")
        assert (
            main(
                [
                    "solve",
                    "--family",
                    "triples",
                    "--n",
                    "12",
                    "--alphabet",
                    "5",
                    "--obs-trace",
                    path,
                ]
            )
            == 0
        )
        capsys.readouterr()

        assert main(["stats", path]) == 0
        report = capsys.readouterr().out
        assert "spans" in report
        assert "fixer.rank3" in report
        assert "p50" in report and "p95" in report
        assert "fixing steps: 12" in report
        assert "histogram fixer.rank3/representability_margin" in report

        assert main(["trace", path, "--check"]) == 0
        assert "schema OK" in capsys.readouterr().out

        assert (
            main(
                ["trace", path, "--component", "fixer.rank3", "--event", "fix"]
            )
            == 0
        )
        listing = capsys.readouterr().out
        assert "12 matching events" in listing

    def test_stats_rejects_malformed_trace(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "bad.jsonl"
        path.write_text('{"seq": 0}\n')
        assert main(["stats", str(path)]) == 1
        assert "error:" in capsys.readouterr().err
