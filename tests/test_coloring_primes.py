"""Unit tests for repro.coloring.primes."""

import pytest

from repro.errors import ColoringError
from repro.coloring import integer_nth_root_ceil, is_prime, smallest_prime_at_least


class TestIsPrime:
    def test_small_values(self):
        primes = {2, 3, 5, 7, 11, 13, 17, 19, 23, 29}
        for n in range(31):
            assert is_prime(n) == (n in primes)

    def test_larger_composite_and_prime(self):
        assert is_prime(7919)  # the 1000th prime
        assert not is_prime(7917)
        assert not is_prime(7921)  # 89^2


class TestSmallestPrimeAtLeast:
    def test_exact_prime(self):
        assert smallest_prime_at_least(13) == 13

    def test_next_prime(self):
        assert smallest_prime_at_least(14) == 17
        assert smallest_prime_at_least(90) == 97

    def test_below_two(self):
        assert smallest_prime_at_least(-5) == 2
        assert smallest_prime_at_least(0) == 2


class TestIntegerNthRoot:
    def test_perfect_powers(self):
        assert integer_nth_root_ceil(8, 3) == 2
        assert integer_nth_root_ceil(81, 4) == 3
        assert integer_nth_root_ceil(1, 5) == 1

    def test_rounding_up(self):
        assert integer_nth_root_ceil(9, 3) == 3
        assert integer_nth_root_ceil(10, 1) == 10
        assert integer_nth_root_ceil(2, 10) == 2

    def test_result_is_minimal(self):
        for value in (7, 100, 12345, 10**9):
            for n in (1, 2, 3, 5):
                root = integer_nth_root_ceil(value, n)
                assert root**n >= value
                assert (root - 1) ** n < value

    def test_validation(self):
        with pytest.raises(ColoringError):
            integer_nth_root_ceil(0, 2)
        with pytest.raises(ColoringError):
            integer_nth_root_ceil(8, 0)
