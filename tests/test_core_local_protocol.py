"""Unit tests for the message-level LOCAL fixing protocol."""

import pytest

from repro.errors import CriterionViolationError, SimulationError
from repro.core import (
    LocalFixingProtocol,
    solve_distributed,
    solve_distributed_local,
)
from repro.applications import (
    hypergraph_sinkless_instance,
    orientations_from_assignment,
    sinkless_orientation_instance,
)
from repro.applications.hypergraph_sinkless import satisfies_requirement
from repro.generators import (
    all_zero_edge_instance,
    all_zero_triple_instance,
    cycle_graph,
    cyclic_triples,
    partition_rounds_triples,
    random_regular_graph,
)
from repro.lll import verify_solution


class TestProtocolSolves:
    def test_rank3_cyclic(self):
        instance = all_zero_triple_instance(15, cyclic_triples(15), 5)
        result = solve_distributed_local(instance)
        assert verify_solution(instance, result.assignment).ok

    def test_rank3_partition(self):
        triples = partition_rounds_triples(18, 2, seed=3)
        instance = all_zero_triple_instance(18, triples, 5)
        result = solve_distributed_local(instance, require_criterion="local")
        assert verify_solution(instance, result.assignment).ok

    def test_rank2_regular(self):
        instance = all_zero_edge_instance(
            random_regular_graph(20, 4, seed=1), 3
        )
        result = solve_distributed_local(instance)
        assert verify_solution(instance, result.assignment).ok

    def test_rank2_cycle(self):
        instance = all_zero_edge_instance(cycle_graph(16), 3)
        result = solve_distributed_local(instance)
        assert verify_solution(instance, result.assignment).ok

    def test_application_end_to_end(self):
        triples = cyclic_triples(12)
        instance = hypergraph_sinkless_instance(12, triples)
        result = solve_distributed_local(instance)
        orientations = orientations_from_assignment(
            triples, result.assignment
        )
        assert satisfies_requirement(12, triples, orientations)

    def test_rejects_at_threshold(self):
        instance = sinkless_orientation_instance(
            random_regular_graph(12, 3, seed=2)
        )
        with pytest.raises(CriterionViolationError):
            solve_distributed_local(instance)


class TestRoundAccounting:
    def test_two_rounds_per_class(self):
        instance = all_zero_triple_instance(12, cyclic_triples(12), 5)
        result = solve_distributed_local(instance)
        assert result.schedule_rounds == 2 * result.palette

    def test_rounds_needed_property(self):
        protocol = LocalFixingProtocol(palette=7)
        assert protocol.rounds_needed == 14

    def test_palette_validation(self):
        with pytest.raises(SimulationError):
            LocalFixingProtocol(palette=0)

    def test_extra_preround_charged(self):
        instance = all_zero_edge_instance(cycle_graph(12), 3)
        high_level = solve_distributed(instance)
        protocol = solve_distributed_local(instance)
        # The protocol charges the 1-hop pre-exchange on top of coloring.
        # (high-level uses edge coloring for rank 2, so only compare the
        # fact that both report positive coloring phases.)
        assert protocol.coloring_rounds >= 1
        assert high_level.coloring_rounds >= 1


class TestConsistencyWithScheduler:
    def test_both_produce_valid_solutions(self):
        triples = cyclic_triples(12)
        scheduler_instance = all_zero_triple_instance(12, triples, 5)
        protocol_instance = all_zero_triple_instance(12, triples, 5)
        scheduler = solve_distributed(scheduler_instance)
        protocol = solve_distributed_local(protocol_instance)
        assert verify_solution(scheduler_instance, scheduler.assignment).ok
        assert verify_solution(protocol_instance, protocol.assignment).ok

    def test_certified_bounds_valid(self):
        instance = all_zero_triple_instance(12, cyclic_triples(12), 5)
        result = solve_distributed_local(instance)
        assert result.fixing.max_certified_bound < 1.0
        # The ledger-derived bound really dominates the conditional
        # probability of every event under the final assignment (= 0).
        for event in instance.events:
            assert event.probability(result.assignment) == 0.0

    def test_step_records_cover_all_variables(self):
        instance = all_zero_triple_instance(12, cyclic_triples(12), 5)
        result = solve_distributed_local(instance)
        fixed_variables = {step.variable for step in result.fixing.steps}
        assert fixed_variables == {v.name for v in instance.variables}

    def test_all_steps_respect_budget(self):
        instance = all_zero_triple_instance(15, cyclic_triples(15), 5)
        result = solve_distributed_local(instance)
        for step in result.fixing.steps:
            assert step.slack >= -1e-9
            assert step.num_good_values >= 1
