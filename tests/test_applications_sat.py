"""Unit tests for the bounded-occurrence SAT application."""

import pytest

from repro.errors import ReproError
from repro.applications import (
    CnfFormula,
    assignment_to_values,
    sat_instance,
    sparse_shared_formula,
)
from repro.core import solve
from repro.lll import check_preconditions, verify_solution


class TestFormula:
    def test_is_satisfied(self):
        formula = CnfFormula(
            num_variables=2,
            clauses=(((0, True), (1, False)),),
        )
        assert formula.is_satisfied({0: True, 1: True})
        assert formula.is_satisfied({0: False, 1: False})
        assert not formula.is_satisfied({0: False, 1: True})

    def test_max_occurrence(self):
        formula = CnfFormula(
            num_variables=2,
            clauses=(((0, True),), ((0, False),), ((1, True),)),
        )
        assert formula.max_occurrence() == 2


class TestInstanceConstruction:
    def test_clause_probability(self):
        formula = sparse_shared_formula(
            num_clauses=6, width=5, shared_per_clause=2, seed=0
        )
        instance = sat_instance(formula)
        assert instance.max_event_probability == pytest.approx(2.0**-5)

    def test_rank_at_most_three(self):
        formula = sparse_shared_formula(
            num_clauses=10, width=5, shared_per_clause=2, seed=1
        )
        assert formula.max_occurrence() <= 3
        assert sat_instance(formula).rank <= 3

    def test_below_threshold(self):
        formula = sparse_shared_formula(
            num_clauses=9, width=5, shared_per_clause=2, seed=2
        )
        report = check_preconditions(sat_instance(formula), max_rank=3)
        assert report.p < report.threshold

    def test_repeated_variable_in_clause_rejected(self):
        formula = CnfFormula(
            num_variables=1, clauses=(((0, True), (0, False)),)
        )
        with pytest.raises(ReproError):
            sat_instance(formula)

    def test_empty_formula_rejected(self):
        with pytest.raises(ReproError):
            sat_instance(CnfFormula(num_variables=0, clauses=()))


class TestGeneratorValidation:
    def test_width_must_exceed_sharing(self):
        with pytest.raises(ReproError):
            sparse_shared_formula(
                num_clauses=5, width=4, shared_per_clause=2, seed=0
            )

    def test_dependency_degree_bounded(self):
        formula = sparse_shared_formula(
            num_clauses=12, width=7, shared_per_clause=3, seed=3
        )
        instance = sat_instance(formula)
        assert instance.max_dependency_degree <= 2 * 3


class TestSolving:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_fixer_satisfies_formula(self, seed):
        formula = sparse_shared_formula(
            num_clauses=10, width=5, shared_per_clause=2, seed=seed
        )
        instance = sat_instance(formula)
        result = solve(instance)
        assert verify_solution(instance, result.assignment).ok
        values = assignment_to_values(formula, result.assignment)
        assert formula.is_satisfied(values)

    def test_wide_clause_instance(self):
        formula = sparse_shared_formula(
            num_clauses=6, width=9, shared_per_clause=3, seed=4
        )
        instance = sat_instance(formula)
        result = solve(instance)
        values = assignment_to_values(formula, result.assignment)
        assert formula.is_satisfied(values)
