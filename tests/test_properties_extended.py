"""Extended property-based tests: auditing, serialisation, naive fixer.

These push randomised inputs through whole pipelines: every solved trace
must audit cleanly, every instance must survive a serialisation round
trip with identical semantics, and the naive fixer must honour its
budget on arbitrary-rank chains.
"""

import json
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import audit_trace, solve, solve_naive
from repro.lll import (
    LLLInstance,
    instance_from_dict,
    instance_to_dict,
    verify_solution,
)
from repro.generators import (
    all_zero_edge_instance,
    all_zero_triple_instance,
    cycle_graph,
    cyclic_triples,
    parity_edge_instance,
    random_regular_graph,
)
from repro.probability import BadEvent, DiscreteVariable


class TestAuditProperties:
    @given(st.integers(0, 10**6), st.integers(6, 12))
    @settings(max_examples=15, deadline=None)
    def test_every_rank2_trace_audits(self, seed, n):
        instance = all_zero_edge_instance(cycle_graph(n), 3)
        order = [v.name for v in instance.variables]
        random.Random(seed).shuffle(order)
        result = solve(instance, order=order)
        twin = all_zero_edge_instance(cycle_graph(n), 3)
        assert audit_trace(twin, result).ok

    @given(st.integers(0, 10**6))
    @settings(max_examples=10, deadline=None)
    def test_every_rank3_trace_audits(self, seed):
        instance = all_zero_triple_instance(9, cyclic_triples(9), 5)
        order = [v.name for v in instance.variables]
        random.Random(seed).shuffle(order)
        result = solve(instance, order=order)
        twin = all_zero_triple_instance(9, cyclic_triples(9), 5)
        assert audit_trace(twin, result).ok

    @given(st.floats(min_value=0.02, max_value=0.13))
    @settings(max_examples=10, deadline=None)
    def test_parity_traces_audit(self, bias):
        instance = parity_edge_instance(cycle_graph(8), bias)
        result = solve(instance)
        twin = parity_edge_instance(cycle_graph(8), bias)
        assert audit_trace(twin, result).ok


class TestSerialisationProperties:
    @given(st.integers(0, 10**6), st.integers(3, 5))
    @settings(max_examples=15, deadline=None)
    def test_round_trip_preserves_probabilities(self, seed, alphabet):
        graph = random_regular_graph(10, 3, seed=seed % 1000)
        instance = all_zero_edge_instance(graph, alphabet)
        blob = json.dumps(instance_to_dict(instance))
        restored = instance_from_dict(json.loads(blob))
        original = instance.event_probabilities()
        for name, probability in restored.event_probabilities().items():
            assert probability == pytest.approx(original[name], abs=1e-12)

    @given(st.integers(0, 10**6))
    @settings(max_examples=10, deadline=None)
    def test_round_trip_preserves_solvability(self, seed):
        instance = all_zero_triple_instance(9, cyclic_triples(9), 5)
        restored = instance_from_dict(instance_to_dict(instance))
        order = [v.name for v in restored.variables]
        random.Random(seed).shuffle(order)
        result = solve(restored, order=order)
        assert verify_solution(restored, result.assignment).ok


def _rank_r_chain(rank: int, alphabet: int, length: int) -> LLLInstance:
    """Overlapping rank-``rank`` hyperedges along a chain of events."""
    variables = [
        DiscreteVariable(("v", i), tuple(range(alphabet)))
        for i in range(length)
    ]
    num_events = length + rank - 1
    scopes = [[] for _ in range(num_events)]
    for i, variable in enumerate(variables):
        for offset in range(rank):
            scopes[i + offset].append(variable)
    events = []
    for index, scope in enumerate(scopes):
        names = tuple(v.name for v in scope)

        def predicate(values, _names=names):
            return all(values[name] == 0 for name in _names)

        events.append(BadEvent(index, scope, predicate))
    return LLLInstance(events)


class TestNaiveFixerProperties:
    @given(st.integers(4, 6), st.integers(0, 10**6))
    @settings(max_examples=15, deadline=None)
    def test_arbitrary_rank_chains(self, rank, seed):
        # Alphabet chosen so the naive per-event criterion holds:
        # p_v = alphabet^-scope vs rank^-H_v with H_v <= rank hyperedges.
        alphabet = rank * 2
        instance = _rank_r_chain(rank, alphabet, length=5)
        order = [v.name for v in instance.variables]
        random.Random(seed).shuffle(order)
        result = solve_naive(instance, order=order)
        assert verify_solution(instance, result.assignment).ok

    @given(st.integers(4, 6))
    @settings(max_examples=5, deadline=None)
    def test_budget_never_exceeded(self, rank):
        instance = _rank_r_chain(rank, rank * 2, length=5)
        result = solve_naive(instance)
        for step in result.steps:
            assert step.slack >= -1e-9
        assert result.max_certified_bound < 1.0
