"""Property-based tests (hypothesis) for the core invariants.

These exercise the mathematical backbone of the reproduction on
adversarially generated inputs:

* the surface ``f`` and the ``S_rep`` characterisation (Lemma 3.5/3.6),
* the constructive triple decomposition (Definition 3.3),
* incurvedness of ``S_rep`` (Lemma 3.7),
* the exact probability engine's laws (total probability, conditioning),
* the fixers' end-to-end guarantee on randomly generated instances.
"""

import math

import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.core import solve
from repro.geometry import (
    boundary_surface,
    decompose_triple,
    is_representable_triple,
    representability_margin,
    surface_alternative_form,
    violates_incurvedness,
)
from repro.lll import LLLInstance, verify_solution
from repro.probability import BadEvent, DiscreteVariable, PartialAssignment


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
def domain_points():
    """Points of f's domain {a, b >= 0, a + b <= 4}."""
    return st.tuples(
        st.floats(min_value=0.0, max_value=4.0, allow_nan=False),
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    ).map(lambda pair: (pair[0], (4.0 - pair[0]) * pair[1]))


def representable_triples():
    """Triples drawn from inside S_rep via the characterisation."""
    return st.tuples(
        domain_points(),
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    ).map(
        lambda pair: (
            pair[0][0],
            pair[0][1],
            boundary_surface(pair[0][0], pair[0][1]) * pair[1],
        )
    )


def outside_triples():
    """Triples strictly outside S_rep."""
    return st.tuples(
        st.floats(min_value=0.0, max_value=4.5, allow_nan=False),
        st.floats(min_value=0.0, max_value=4.5, allow_nan=False),
        st.floats(min_value=0.0, max_value=4.5, allow_nan=False),
    ).filter(lambda t: representability_margin(*t) < -1e-6)


# ----------------------------------------------------------------------
# Geometry properties
# ----------------------------------------------------------------------
class TestSurfaceProperties:
    @given(domain_points())
    def test_surface_in_range(self, point):
        a, b = point
        value = boundary_surface(a, b)
        assert 0.0 <= value <= 4.0

    @given(domain_points())
    def test_two_forms_agree(self, point):
        a, b = point
        assert boundary_surface(a, b) == pytest.approx(
            surface_alternative_form(a, b), abs=1e-10
        )

    @given(domain_points())
    def test_symmetry(self, point):
        a, b = point
        assert boundary_surface(a, b) == pytest.approx(
            boundary_surface(b, a), abs=1e-10
        )

    @given(domain_points(), domain_points(), st.floats(0.0, 1.0))
    def test_convexity_along_segments(self, p1, p2, q):
        a = q * p1[0] + (1 - q) * p2[0]
        b = q * p1[1] + (1 - q) * p2[1]
        midpoint_value = boundary_surface(a, b)
        chord_value = q * boundary_surface(*p1) + (1 - q) * boundary_surface(
            *p2
        )
        assert midpoint_value <= chord_value + 1e-9


class TestRepresentableProperties:
    @given(representable_triples())
    def test_characterisation_members_decompose(self, triple):
        decomposition = decompose_triple(*triple)
        assert decomposition.max_violation(*triple) < 1e-7

    @given(representable_triples(), st.floats(0.0, 1.0), st.floats(0.0, 1.0))
    def test_downward_closure(self, triple, shrink_a, shrink_c):
        a, b, c = triple
        assert is_representable_triple(a * shrink_a, b, c * shrink_c)

    @given(representable_triples())
    def test_margin_sign_agrees_with_membership(self, triple):
        margin = representability_margin(*triple)
        assert margin >= -1e-9

    @given(outside_triples(), outside_triples())
    @settings(max_examples=200)
    def test_incurvedness(self, s, s_prime):
        # Lemma 3.7: segments between outside points stay outside.
        assert not violates_incurvedness(s, s_prime, num_samples=33)

    @given(representable_triples())
    def test_decomposition_respects_budgets(self, triple):
        decomposition = decompose_triple(*triple)
        for value in (
            decomposition.a1,
            decomposition.a2,
            decomposition.b1,
            decomposition.b3,
            decomposition.c2,
            decomposition.c3,
        ):
            assert -1e-12 <= value <= 2.0 + 1e-12
        for total in decomposition.edge_sums():
            assert total <= 2.0 + 1e-9


# ----------------------------------------------------------------------
# Probability engine properties
# ----------------------------------------------------------------------
def small_distributions():
    return st.lists(
        st.floats(min_value=0.01, max_value=1.0), min_size=2, max_size=4
    ).map(lambda ws: tuple(w / math.fsum(ws) for w in ws))


class TestProbabilityLaws:
    @given(small_distributions(), st.integers(0, 1000))
    def test_law_of_total_probability(self, distribution, outcome_seed):
        variables = [
            DiscreteVariable(f"v{i}", tuple(range(len(distribution))), distribution)
            for i in range(3)
        ]
        bad = outcome_seed % len(distribution)
        event = BadEvent.all_equal("E", variables, target=bad)
        empty = PartialAssignment()
        total = math.fsum(
            prob * event.probability(empty.fixed(variables[0], value))
            for value, prob in variables[0].support_items()
        )
        assert total == pytest.approx(event.probability(), abs=1e-12)

    @given(small_distributions())
    def test_expected_increase_is_one(self, distribution):
        variables = [
            DiscreteVariable(f"v{i}", tuple(range(len(distribution))), distribution)
            for i in range(2)
        ]
        event = BadEvent.all_equal("E", variables, target=0)
        empty = PartialAssignment()
        expectation = math.fsum(
            prob * event.conditional_increase(empty, variables[0], value)
            for value, prob in variables[0].support_items()
        )
        if event.probability() > 0:
            assert expectation == pytest.approx(1.0, abs=1e-12)

    @given(st.integers(2, 5), st.integers(1, 4))
    def test_all_equal_probability_formula(self, alphabet, arity):
        variables = [
            DiscreteVariable(f"v{i}", tuple(range(alphabet)))
            for i in range(arity)
        ]
        event = BadEvent.all_equal("E", variables, target=0)
        assert event.probability() == pytest.approx(
            float(alphabet) ** -arity
        )


# ----------------------------------------------------------------------
# End-to-end fixer property
# ----------------------------------------------------------------------
class TestFixerProperties:
    @given(st.integers(5, 12), st.integers(3, 5), st.integers(0, 10**6))
    @settings(max_examples=20, deadline=None)
    def test_rank2_solves_random_cycles(self, n, alphabet, seed):
        import random

        from repro.generators import all_zero_edge_instance, cycle_graph

        instance = all_zero_edge_instance(cycle_graph(n), alphabet)
        order = [v.name for v in instance.variables]
        random.Random(seed).shuffle(order)
        result = solve(instance, order=order)
        assert verify_solution(instance, result.assignment).ok

    @given(st.integers(5, 9), st.integers(0, 10**6))
    @settings(max_examples=10, deadline=None)
    def test_rank3_solves_random_orders(self, n, seed):
        import random

        from repro.generators import all_zero_triple_instance, cyclic_triples

        instance = all_zero_triple_instance(n, cyclic_triples(n), 5)
        order = [v.name for v in instance.variables]
        random.Random(seed).shuffle(order)
        result = solve(instance, order=order)
        assert verify_solution(instance, result.assignment).ok

    @given(st.integers(0, 10**6))
    @settings(max_examples=10, deadline=None)
    def test_rank3_biased_distributions(self, seed):
        import random

        from repro.generators import all_zero_triple_instance, cyclic_triples

        rng = random.Random(seed)
        p_zero = rng.uniform(0.02, 0.12)
        rest = (1.0 - p_zero) / 2.0
        instance = all_zero_triple_instance(
            9, cyclic_triples(9), 3, probabilities=(p_zero, rest, rest)
        )
        # p = p_zero^3 must be < 2^-4 = 0.0625: true for p_zero <= 0.39.
        result = solve(instance)
        assert verify_solution(instance, result.assignment).ok
