"""Unit tests for the rank-2 fixer (Theorem 1.1)."""

import random

import pytest

from repro.errors import (
    CriterionViolationError,
    NoGoodValueError,
    PStarViolationError,
    RankViolationError,
)
from repro.core import Rank2Fixer, solve_rank2
from repro.generators import (
    all_zero_edge_instance,
    cycle_graph,
    grid_graph,
    random_regular_graph,
    random_tree,
    threshold_count_edge_instance,
)
from repro.lll import verify_solution


class TestPreconditions:
    def test_rejects_rank3(self, small_rank3_instance):
        with pytest.raises(RankViolationError):
            Rank2Fixer(small_rank3_instance)

    def test_rejects_at_threshold(self):
        instance = all_zero_edge_instance(cycle_graph(8), 2)
        with pytest.raises(CriterionViolationError):
            Rank2Fixer(instance)

    def test_threshold_check_can_be_disabled(self):
        instance = all_zero_edge_instance(cycle_graph(8), 2)
        Rank2Fixer(instance, require_criterion=False)


class TestFixing:
    def test_solves_cycle(self, small_rank2_instance):
        result = solve_rank2(small_rank2_instance)
        assert verify_solution(small_rank2_instance, result.assignment).ok

    def test_solves_regular_graph(self, regular_rank2_instance):
        result = solve_rank2(regular_rank2_instance)
        assert verify_solution(regular_rank2_instance, result.assignment).ok

    def test_solves_tree_under_local_criterion(self):
        # Trees are irregular: leaves have p = 1/4 > 2^-d globally, but
        # every event satisfies its local bound p_v < 2^-deg(v).
        instance = all_zero_edge_instance(random_tree(20, seed=3), 4)
        result = solve_rank2(instance, require_criterion="local")
        assert verify_solution(instance, result.assignment).ok

    def test_tree_violates_global_but_not_local(self):
        from repro.lll import check_local_criterion, check_preconditions

        instance = all_zero_edge_instance(random_tree(20, seed=3), 4)
        with pytest.raises(CriterionViolationError):
            check_preconditions(instance)
        check_local_criterion(instance)  # must not raise

    def test_solves_grid_under_local_criterion(self):
        # Grid corners have degree 2 < d = 4, so only the local criterion
        # applies with alphabet 3.
        instance = all_zero_edge_instance(grid_graph(4, 4), 3)
        result = solve_rank2(instance, require_criterion="local")
        assert verify_solution(instance, result.assignment).ok

    def test_solves_torus(self):
        from repro.generators import torus_graph

        instance = all_zero_edge_instance(torus_graph(3, 4), 3)
        result = solve_rank2(instance)
        assert verify_solution(instance, result.assignment).ok

    def test_solves_softer_events(self):
        # Bad iff at least deg incident variables are zero (= all of them)
        # on a degree-3 regular graph with alphabet 4.
        graph = random_regular_graph(12, 3, seed=11)
        instance = threshold_count_edge_instance(graph, 4, min_zeros=3)
        result = solve_rank2(instance)
        assert verify_solution(instance, result.assignment).ok

    def test_every_order_succeeds(self, small_rank2_instance):
        names = [v.name for v in small_rank2_instance.variables]
        rng = random.Random(0)
        for _ in range(10):
            rng.shuffle(names)
            instance = all_zero_edge_instance(cycle_graph(12), 3)
            result = solve_rank2(instance, order=list(names))
            assert verify_solution(instance, result.assignment).ok

    def test_double_fix_rejected(self, small_rank2_instance):
        fixer = Rank2Fixer(small_rank2_instance)
        name = small_rank2_instance.variables[0].name
        fixer.fix_variable(name)
        with pytest.raises(PStarViolationError):
            fixer.fix_variable(name)

    def test_run_completes_partial_order(self, small_rank2_instance):
        names = [v.name for v in small_rank2_instance.variables]
        result = solve_rank2(small_rank2_instance, order=names[:3])
        assert verify_solution(small_rank2_instance, result.assignment).ok


class TestInvariants:
    def test_invariant_maintained_throughout(self):
        instance = all_zero_edge_instance(cycle_graph(10), 3)
        fixer = Rank2Fixer(instance, validate_invariant=True)
        result = fixer.run()
        assert verify_solution(instance, result.assignment).ok

    def test_step_slack_nonnegative(self, regular_rank2_instance):
        result = solve_rank2(regular_rank2_instance)
        assert result.min_slack >= -1e-9

    def test_increase_budget_theorem(self, regular_rank2_instance):
        # Theorem 1.1's accounting: the weighted increases on each edge
        # never exceed 2, hence every certified bound is < 1.
        result = solve_rank2(regular_rank2_instance)
        assert result.max_certified_bound < 1.0

    def test_certified_bound_below_p_times_2d(self, regular_rank2_instance):
        result = solve_rank2(regular_rank2_instance)
        p = 3.0**-4
        d = 4
        for bound in result.certified_bounds.values():
            assert bound <= p * 2**d + 1e-9

    def test_step_records_shape(self, small_rank2_instance):
        result = solve_rank2(small_rank2_instance)
        assert result.num_steps == small_rank2_instance.num_variables
        for step in result.steps:
            assert len(step.events) in (1, 2)
            assert len(step.increases) == len(step.events)
            assert 1 <= step.num_good_values <= step.num_values

    def test_final_probabilities_are_zero(self, small_rank2_instance):
        result = solve_rank2(small_rank2_instance)
        for event in small_rank2_instance.events:
            assert event.probability(result.assignment) == 0.0


class TestRank1Variables:
    def test_single_event_instance(self):
        from repro.lll import LLLInstance
        from repro.probability import BadEvent, DiscreteVariable

        coins = [DiscreteVariable.fair_coin(f"c{i}") for i in range(4)]
        event = BadEvent.all_equal("E", coins, target=1)
        instance = LLLInstance([event])
        result = solve_rank2(instance)
        assert verify_solution(instance, result.assignment).ok

    def test_rank1_steps_never_increase(self):
        from repro.lll import LLLInstance
        from repro.probability import BadEvent, DiscreteVariable

        coins = [DiscreteVariable.fair_coin(f"c{i}") for i in range(5)]
        event = BadEvent.all_equal("E", coins, target=0)
        instance = LLLInstance([event])
        result = solve_rank2(instance)
        for step in result.steps:
            assert step.increases[0] <= 1.0 + 1e-9
