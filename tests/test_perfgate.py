"""The perf-regression gate: metric policies, matching, failure modes."""

from __future__ import annotations

import json

import pytest

from repro.analysis import (
    DEFAULT_TOLERANCE,
    compare_results,
    compare_rows,
)
from repro.analysis.perfgate import _metric_class
from repro.errors import ReproError


def statuses(verdicts):
    return {row.metric: row.status for row in verdicts}


# ----------------------------------------------------------------------
# Metric classification
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "name,baseline,candidate,expected",
    [
        ("identical_to_serial", True, True, "bool"),
        ("ok", True, 1, "bool"),
        ("speedup_vs_serial", 2.0, 1.9, "speedup"),
        ("overhead_pct", 1.0, 1.1, "overhead"),
        ("steps", 41, 41, "int"),
        ("best_seconds", 0.5, 0.6, "time"),
        ("wall_s", 0.5, 0.6, "time"),
        ("p99_ns", 100, 90, "time"),
        ("backend", "serial", "serial", "info"),
        ("note", None, 1.0, "info"),
        ("utilization", 0.9, 0.8, "info"),
    ],
)
def test_metric_class(name, baseline, candidate, expected):
    assert _metric_class(name, baseline, candidate) == expected


# ----------------------------------------------------------------------
# Row comparison policies
# ----------------------------------------------------------------------
def test_boolean_invariants_must_not_regress():
    base = {"identical_to_serial": True, "recovered": False}
    good = {"identical_to_serial": True, "recovered": True}
    bad = {"identical_to_serial": False, "recovered": False}
    assert statuses(compare_rows("EX", "k", base, good, 0.4)) == {
        "identical_to_serial": "ok",
        "recovered": "ok",  # false -> true is an improvement
    }
    verdicts = compare_rows("EX", "k", base, bad, 0.4)
    assert statuses(verdicts)["identical_to_serial"] == "fail"


def test_speedup_floor_and_overhead_ceiling():
    base = {"speedup": 2.0, "overhead_ratio": 1.0}
    inside = {"speedup": 1.3, "overhead_ratio": 1.3}
    outside = {"speedup": 1.1, "overhead_ratio": 1.5}
    assert statuses(compare_rows("EX", "k", base, inside, 0.4)) == {
        "speedup": "ok",
        "overhead_ratio": "ok",
    }
    verdicts = compare_rows("EX", "k", base, outside, 0.4)
    assert statuses(verdicts) == {
        "speedup": "fail",
        "overhead_ratio": "fail",
    }
    notes = {row.metric: row.note for row in verdicts}
    assert "floor" in notes["speedup"]
    assert "ceiling" in notes["overhead_ratio"]


def test_integer_counts_are_exact():
    verdicts = compare_rows("EX", "k", {"steps": 41}, {"steps": 42}, 0.4)
    assert statuses(verdicts) == {"steps": "fail"}
    assert "deterministic" in verdicts[0].note


def test_times_and_strings_are_informational():
    verdicts = compare_rows(
        "EX",
        "k",
        {"best_seconds": 0.1, "backend": "serial"},
        {"best_seconds": 99.0, "backend": "process"},
        0.4,
    )
    assert statuses(verdicts) == {
        "best_seconds": "info",
        "backend": "info",
    }


def test_key_fields_and_missing_metrics_skipped():
    # "mode" is E5's key field: excluded from metric comparison.
    verdicts = compare_rows(
        "E5",
        "on",
        {"mode": "on", "events": 10, "gone": 1},
        {"mode": "on", "events": 10},
        0.4,
    )
    assert statuses(verdicts) == {"events": "ok", "gone": "skipped"}


# ----------------------------------------------------------------------
# Directory-level comparison
# ----------------------------------------------------------------------
def write_results(directory, experiment, rows):
    directory.mkdir(parents=True, exist_ok=True)
    (directory / f"{experiment}.json").write_text(json.dumps(rows))


def test_compare_results_pass_and_fail(tmp_path):
    baseline = tmp_path / "baseline"
    candidate = tmp_path / "candidate"
    rows = [{"experiment": "E5", "mode": "on", "events": 10,
             "trace_ok": True, "on_vs_off": 2.0}]
    write_results(baseline, "E5", rows)
    write_results(candidate, "E5", rows)
    report = compare_results(str(candidate), str(baseline))
    assert report.ok
    assert "PASS" in report.render()

    regressed = [{"experiment": "E5", "mode": "on", "events": 10,
                  "trace_ok": False, "on_vs_off": 2.0}]
    write_results(candidate, "E5", regressed)
    report = compare_results(str(candidate), str(baseline))
    assert not report.ok
    assert [row.metric for row in report.failures] == ["trace_ok"]
    assert "FAIL" in report.render()


def test_compare_results_missing_candidate_artifact_fails(tmp_path):
    baseline = tmp_path / "baseline"
    candidate = tmp_path / "candidate"
    candidate.mkdir()
    write_results(baseline, "E5", [{"experiment": "E5", "mode": "on"}])
    report = compare_results(str(candidate), str(baseline))
    assert not report.ok
    assert "missing" in report.failures[0].note


def test_compare_results_unmatched_rows_skip_but_zero_matches_fail(tmp_path):
    baseline = tmp_path / "baseline"
    candidate = tmp_path / "candidate"
    write_results(
        baseline, "E5",
        [{"mode": "on", "events": 1}, {"mode": "off", "events": 2}],
    )
    # One row matches, the other is absent (quick mode restricting
    # backends is the motivating case): skip, don't fail.
    write_results(candidate, "E5", [{"mode": "on", "events": 1}])
    report = compare_results(str(candidate), str(baseline))
    assert report.ok
    assert any(row.status == "skipped" for row in report.rows)

    # No row matches at all: a mis-keyed run must not pass silently.
    write_results(candidate, "E5", [{"mode": "sideways", "events": 1}])
    report = compare_results(str(candidate), str(baseline))
    assert not report.ok
    assert "no candidate row matched" in report.failures[0].note


def test_compare_results_named_experiment_requires_baseline(tmp_path):
    baseline = tmp_path / "baseline"
    candidate = tmp_path / "candidate"
    baseline.mkdir()
    candidate.mkdir()
    with pytest.raises(ReproError):
        compare_results(
            str(candidate), str(baseline), experiments=["E9"]
        )


def test_compare_results_validates_inputs(tmp_path):
    baseline = tmp_path / "baseline"
    candidate = tmp_path / "candidate"
    baseline.mkdir()
    candidate.mkdir()
    with pytest.raises(ReproError):
        compare_results(str(candidate), str(baseline), tolerance=1.5)
    with pytest.raises(ReproError):
        compare_results(str(tmp_path / "absent"), str(baseline))
    (baseline / "E1.json").write_text('{"not": "a list"}')
    (candidate / "E1.json").write_text("[]")
    with pytest.raises(ReproError):
        compare_results(str(candidate), str(baseline))


def test_default_tolerance_is_loose_but_bounded():
    assert 0.0 < DEFAULT_TOLERANCE < 1.0
