"""Unit tests for repro.probability.variable."""

import math
import random

import pytest

from repro.errors import InvalidAssignmentError, InvalidDistributionError
from repro.probability import DiscreteVariable


class TestConstruction:
    def test_uniform_default(self):
        variable = DiscreteVariable("x", (0, 1, 2))
        assert variable.probabilities == pytest.approx((1 / 3, 1 / 3, 1 / 3))

    def test_explicit_probabilities(self):
        variable = DiscreteVariable("x", ("a", "b"), (0.25, 0.75))
        assert variable.probability_of("a") == 0.25
        assert variable.probability_of("b") == 0.75

    def test_empty_support_rejected(self):
        with pytest.raises(InvalidDistributionError):
            DiscreteVariable("x", ())

    def test_duplicate_values_rejected(self):
        with pytest.raises(InvalidDistributionError):
            DiscreteVariable("x", (0, 0, 1))

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(InvalidDistributionError):
            DiscreteVariable("x", (0, 1), (1.0,))

    def test_negative_probability_rejected(self):
        with pytest.raises(InvalidDistributionError):
            DiscreteVariable("x", (0, 1), (-0.5, 1.5))

    def test_wrong_sum_rejected(self):
        with pytest.raises(InvalidDistributionError):
            DiscreteVariable("x", (0, 1), (0.4, 0.4))

    def test_tolerates_tiny_sum_error(self):
        probs = (0.1,) * 10
        DiscreteVariable("x", tuple(range(10)), probs)

    def test_zero_probability_values_allowed(self):
        variable = DiscreteVariable("x", (0, 1, 2), (0.5, 0.5, 0.0))
        assert variable.probability_of(2) == 0.0


class TestAccessors:
    def test_num_values(self):
        assert DiscreteVariable("x", (0, 1, 2)).num_values == 3

    def test_contains(self):
        variable = DiscreteVariable("x", (0, 1))
        assert 0 in variable
        assert 5 not in variable

    def test_probability_of_unknown_value_raises(self):
        variable = DiscreteVariable("x", (0, 1))
        with pytest.raises(InvalidAssignmentError):
            variable.probability_of(7)

    def test_support_items_skips_zero_mass(self):
        variable = DiscreteVariable("x", (0, 1, 2), (0.5, 0.0, 0.5))
        assert [value for value, _p in variable.support_items()] == [0, 2]

    def test_is_uniform(self):
        assert DiscreteVariable("x", (0, 1, 2)).is_uniform
        assert not DiscreteVariable("x", (0, 1), (0.3, 0.7)).is_uniform


class TestSampling:
    def test_sample_in_support(self):
        rng = random.Random(0)
        variable = DiscreteVariable("x", (0, 1, 2), (0.2, 0.5, 0.3))
        for _ in range(100):
            assert variable.sample(rng) in variable

    def test_sample_respects_zero_mass(self):
        rng = random.Random(1)
        variable = DiscreteVariable("x", (0, 1), (0.0, 1.0))
        assert all(variable.sample(rng) == 1 for _ in range(50))

    def test_sample_frequency_roughly_matches(self):
        rng = random.Random(2)
        variable = DiscreteVariable("x", (0, 1), (0.25, 0.75))
        ones = sum(variable.sample(rng) for _ in range(4000))
        assert 0.70 < ones / 4000 < 0.80


class TestFactories:
    def test_fair_coin(self):
        coin = DiscreteVariable.fair_coin("c")
        assert coin.values == (0, 1)
        assert coin.is_uniform

    def test_bernoulli(self):
        variable = DiscreteVariable.bernoulli("b", 0.9)
        assert variable.probability_of(1) == pytest.approx(0.9)
        assert variable.probability_of(0) == pytest.approx(0.1)

    def test_uniform_factory(self):
        variable = DiscreteVariable.uniform("u", ("x", "y", "z", "w"))
        assert variable.probability_of("z") == pytest.approx(0.25)


class TestIdentity:
    def test_hash_by_name(self):
        a = DiscreteVariable("x", (0, 1))
        b = DiscreteVariable("x", (0, 1))
        assert hash(a) == hash(b)
        assert a == b

    def test_equality_requires_same_distribution(self):
        a = DiscreteVariable("x", (0, 1))
        b = DiscreteVariable("x", (0, 1), (0.3, 0.7))
        assert a != b

    def test_repr_mentions_name(self):
        assert "x" in repr(DiscreteVariable("x", (0, 1)))
