"""Unit tests for sequential drivers, orders and adaptive adversaries."""

import random

import pytest

from repro.errors import RankViolationError
from repro.core import (
    Rank2Fixer,
    Rank3Fixer,
    construction_order,
    interleaved_order,
    lexicographic_chooser,
    make_random_chooser,
    max_pressure_chooser,
    min_pressure_chooser,
    random_order,
    reversed_order,
    run_with_adversary,
    solve,
)
from repro.generators import (
    all_zero_edge_instance,
    all_zero_triple_instance,
    cycle_graph,
    cyclic_triples,
)
from repro.lll import verify_solution


def _fresh_rank2():
    return all_zero_edge_instance(cycle_graph(10), 3)


def _fresh_rank3():
    return all_zero_triple_instance(9, cyclic_triples(9), 5)


class TestStaticOrders:
    def test_construction_order_lists_all(self):
        instance = _fresh_rank2()
        order = construction_order(instance)
        assert len(order) == instance.num_variables
        assert len(set(order)) == len(order)

    def test_reversed_order(self):
        instance = _fresh_rank2()
        assert reversed_order(instance) == list(
            reversed(construction_order(instance))
        )

    def test_random_order_is_permutation(self):
        instance = _fresh_rank2()
        order = random_order(instance, random.Random(0))
        assert sorted(map(repr, order)) == sorted(
            map(repr, construction_order(instance))
        )

    def test_interleaved_order_is_permutation(self):
        instance = _fresh_rank2()
        order = interleaved_order(instance, stride=3)
        assert sorted(map(repr, order)) == sorted(
            map(repr, construction_order(instance))
        )

    def test_all_static_orders_solve(self):
        for order_fn in (
            construction_order,
            reversed_order,
            lambda i: random_order(i, random.Random(7)),
            lambda i: interleaved_order(i, 4),
        ):
            instance = _fresh_rank2()
            result = solve(instance, order=order_fn(instance))
            assert verify_solution(instance, result.assignment).ok


class TestDispatch:
    def test_dispatches_rank2(self):
        instance = _fresh_rank2()
        result = solve(instance)
        assert verify_solution(instance, result.assignment).ok

    def test_dispatches_rank3(self):
        instance = _fresh_rank3()
        result = solve(instance)
        assert verify_solution(instance, result.assignment).ok

    def test_rejects_rank4(self):
        from repro.lll import LLLInstance
        from repro.probability import BadEvent, DiscreteVariable

        shared = DiscreteVariable("s", tuple(range(32)))
        events = [
            BadEvent.all_equal(f"E{i}", [shared], target=0) for i in range(4)
        ]
        with pytest.raises(RankViolationError):
            solve(LLLInstance(events))

    def test_order_and_chooser_are_exclusive(self):
        instance = _fresh_rank2()
        with pytest.raises(ValueError):
            solve(
                instance,
                order=construction_order(instance),
                chooser=lexicographic_chooser,
            )


class TestAdversaries:
    @pytest.mark.parametrize(
        "chooser",
        [
            max_pressure_chooser,
            min_pressure_chooser,
            lexicographic_chooser,
        ],
    )
    def test_rank2_survives_adversary(self, chooser):
        instance = _fresh_rank2()
        fixer = Rank2Fixer(instance)
        result = run_with_adversary(fixer, chooser)
        assert verify_solution(instance, result.assignment).ok

    @pytest.mark.parametrize(
        "chooser",
        [
            max_pressure_chooser,
            min_pressure_chooser,
            lexicographic_chooser,
        ],
    )
    def test_rank3_survives_adversary(self, chooser):
        instance = _fresh_rank3()
        fixer = Rank3Fixer(instance)
        result = run_with_adversary(fixer, chooser)
        assert verify_solution(instance, result.assignment).ok

    def test_random_chooser(self):
        instance = _fresh_rank3()
        fixer = Rank3Fixer(instance)
        chooser = make_random_chooser(random.Random(3))
        result = run_with_adversary(fixer, chooser)
        assert verify_solution(instance, result.assignment).ok

    def test_solve_accepts_chooser(self):
        instance = _fresh_rank3()
        result = solve(instance, chooser=max_pressure_chooser)
        assert verify_solution(instance, result.assignment).ok

    def test_adversary_sees_partial_progress(self):
        instance = _fresh_rank2()
        fixer = Rank2Fixer(instance)
        seen_sizes = []

        def spy_chooser(live_fixer, unfixed):
            seen_sizes.append(len(unfixed))
            return unfixed[0]

        run_with_adversary(fixer, spy_chooser)
        assert seen_sizes == list(
            range(instance.num_variables, 0, -1)
        )
