"""Opt-in profiling: collapsed-stack events and trace-side rendering."""

from __future__ import annotations

import time

import pytest

from repro.errors import ObsError
from repro.obs import (
    PROFILE_ENV,
    PROFILE_MODES,
    Recorder,
    check_events,
    collect_profiles,
    profile_mode_from_env,
    profiled,
    render_collapsed,
    render_profile_report,
)


def spin(deadline_seconds=0.02):
    """Busy-work with a recognizable frame for the profilers to see."""
    total = 0
    end = time.perf_counter() + deadline_seconds
    while time.perf_counter() < end:
        total += sum(range(50))
    return total


# ----------------------------------------------------------------------
# Mode resolution
# ----------------------------------------------------------------------
def test_profile_mode_from_env_unset(monkeypatch):
    monkeypatch.delenv(PROFILE_ENV, raising=False)
    assert profile_mode_from_env() is None
    monkeypatch.setenv(PROFILE_ENV, "")
    assert profile_mode_from_env() is None


@pytest.mark.parametrize("mode", PROFILE_MODES)
def test_profile_mode_from_env_valid(monkeypatch, mode):
    monkeypatch.setenv(PROFILE_ENV, mode.upper())
    assert profile_mode_from_env() == mode


def test_profile_mode_from_env_rejects_unknown(monkeypatch):
    monkeypatch.setenv(PROFILE_ENV, "perf")
    with pytest.raises(ObsError):
        profile_mode_from_env()


def test_profiled_rejects_unknown_mode():
    with pytest.raises(ObsError):
        profiled(None, "runtime", "flamescope")


# ----------------------------------------------------------------------
# The profiled context manager
# ----------------------------------------------------------------------
def test_profiled_is_inert_without_mode_or_recorder():
    recorder = Recorder(run_id="inert")
    try:
        with profiled(recorder, "runtime", None):
            spin(0.001)
        with profiled(None, "runtime", "cprofile"):
            spin(0.001)
    finally:
        recorder.close()
    assert not any(
        e["event"] == "profile" for e in recorder.memory.events
    )


@pytest.mark.parametrize("mode", PROFILE_MODES)
def test_profiled_emits_one_collapsed_stack_event(mode):
    recorder = Recorder(run_id=f"profiled-{mode}")
    try:
        with profiled(recorder, "runtime", mode, name="hot"):
            spin()
    finally:
        recorder.close()
    events = recorder.memory.events
    assert check_events(events) == len(events)
    (event,) = [e for e in events if e["event"] == "profile"]
    payload = event["payload"]
    assert payload["mode"] == mode
    assert payload["name"] == "hot"
    assert payload["duration_ns"] > 0
    assert payload["samples"] >= 0
    for line in payload["collapsed"]:
        stack, _, weight = line.rpartition(" ")
        assert stack
        assert int(weight) > 0
    if mode == "cprofile":
        # cProfile coverage is exact: the busy loop must show up.
        assert any("spin" in line for line in payload["collapsed"])


# ----------------------------------------------------------------------
# Trace-side aggregation and rendering
# ----------------------------------------------------------------------
def profile_event(component, collapsed):
    return {
        "component": component,
        "event": "profile",
        "payload": {"collapsed": collapsed},
    }


def test_collect_profiles_merges_weights_across_events():
    events = [
        profile_event("runtime", ["a;b 3", "a;c 1"]),
        profile_event("worker", ["a;b 2"]),
        {"component": "runtime", "event": "span", "payload": {}},
    ]
    assert collect_profiles(events) == {"a;b": 5, "a;c": 1}
    assert collect_profiles(events, component="worker") == {"a;b": 2}
    assert collect_profiles(events, component="absent") == {}


def test_collect_profiles_rejects_malformed_lines():
    with pytest.raises(ObsError):
        collect_profiles([profile_event("runtime", ["a;b notanumber"])])


def test_render_collapsed_is_folded_format():
    rendered = render_collapsed({"a;b": 5, "a;c": 1})
    assert rendered == "a;b 5\na;c 1"


def test_render_profile_report_ranks_leaves_and_stacks():
    report = render_profile_report({"main;hot": 75, "main;cold": 25})
    assert "hottest frames" in report
    assert "75.0%" in report
    assert "main;hot" in report
    # Empty traces get guidance, not a crash.
    assert "REPRO_PROFILE" in render_profile_report({})
