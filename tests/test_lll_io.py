"""Unit tests for LLL instance serialisation."""

import json

import pytest

from repro.errors import EnumerationLimitError, ReproError
from repro.lll import (
    LLLInstance,
    instance_from_dict,
    instance_to_dict,
    load_instance,
    save_instance,
    verify_solution,
)
from repro.core import solve
from repro.generators import (
    all_zero_edge_instance,
    all_zero_triple_instance,
    cycle_graph,
    cyclic_triples,
)
from repro.probability import BadEvent, DiscreteVariable


class TestRoundTrip:
    def test_structure_preserved(self):
        instance = all_zero_edge_instance(cycle_graph(8), 3)
        restored = instance_from_dict(instance_to_dict(instance))
        assert restored.num_events == instance.num_events
        assert restored.num_variables == instance.num_variables
        assert restored.rank == instance.rank
        assert restored.max_dependency_degree == (
            instance.max_dependency_degree
        )

    def test_probabilities_preserved(self):
        instance = all_zero_triple_instance(
            9, cyclic_triples(9), 3, probabilities=(0.1, 0.45, 0.45)
        )
        restored = instance_from_dict(instance_to_dict(instance))
        original = instance.event_probabilities()
        for name, probability in restored.event_probabilities().items():
            assert probability == pytest.approx(original[name], abs=1e-12)

    def test_json_safe(self):
        instance = all_zero_edge_instance(cycle_graph(6), 3)
        blob = json.dumps(instance_to_dict(instance))
        restored = instance_from_dict(json.loads(blob))
        assert restored.num_events == 6

    def test_tuple_names_survive(self):
        instance = all_zero_edge_instance(cycle_graph(6), 3)
        restored = instance_from_dict(instance_to_dict(instance))
        names = {variable.name for variable in restored.variables}
        assert ("edge", 0, 1) in names

    def test_restored_instance_solves(self):
        instance = all_zero_triple_instance(9, cyclic_triples(9), 5)
        restored = instance_from_dict(instance_to_dict(instance))
        result = solve(restored)
        assert verify_solution(restored, result.assignment).ok

    def test_file_round_trip(self, tmp_path):
        instance = all_zero_edge_instance(cycle_graph(6), 3)
        path = tmp_path / "instance.json"
        save_instance(instance, str(path))
        restored = load_instance(str(path))
        assert restored.num_events == 6

    def test_nontrivial_predicates_tabulated(self):
        # Parity predicates round-trip via the bad-outcome table.
        from repro.generators import parity_edge_instance

        instance = parity_edge_instance(cycle_graph(6), 0.2)
        restored = instance_from_dict(instance_to_dict(instance))
        assert restored.max_event_probability == pytest.approx(
            2 * 0.2 * 0.8
        )


class TestValidation:
    def test_rejects_wrong_format(self):
        with pytest.raises(ReproError):
            instance_from_dict({"format": "something-else"})

    def test_rejects_wrong_version(self):
        with pytest.raises(ReproError):
            instance_from_dict(
                {"format": "repro-lll-instance", "version": 99}
            )

    def test_rejects_unknown_scope(self):
        payload = {
            "format": "repro-lll-instance",
            "version": 1,
            "variables": [],
            "events": [
                {"name": "E", "scope": ["ghost"], "bad_outcomes": []}
            ],
        }
        with pytest.raises(ReproError):
            instance_from_dict(payload)

    def test_tabulation_limit(self):
        variables = [
            DiscreteVariable(f"v{i}", tuple(range(8))) for i in range(10)
        ]
        event = BadEvent("E", variables, lambda values: False)
        instance = LLLInstance([event])
        with pytest.raises(EnumerationLimitError):
            instance_to_dict(instance, tabulation_limit=1000)

    def test_unserialisable_name_rejected(self):
        coin = DiscreteVariable(object(), (0, 1))  # type: ignore[arg-type]
        event = BadEvent("E", [coin], lambda values: False)
        instance = LLLInstance([event])
        with pytest.raises(ReproError):
            instance_to_dict(instance)
