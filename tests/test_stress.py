"""Moderate-scale stress tests: the library at a few hundred events.

These guard against accidental quadratic blow-ups in the hot paths
(probability caching, dependency-graph construction, the simulator) by
running end-to-end at sizes an experimenter would actually use.
"""

import time

import pytest

from repro.core import (
    solve,
    solve_distributed,
    solve_distributed_local,
)
from repro.generators import (
    all_zero_edge_instance,
    all_zero_triple_instance,
    cycle_graph,
    cyclic_triples,
    random_regular_graph,
)
from repro.lll import verify_solution


class TestSequentialScale:
    def test_rank2_300_events(self):
        instance = all_zero_edge_instance(
            random_regular_graph(300, 4, seed=0), 3
        )
        start = time.monotonic()
        result = solve(instance)
        elapsed = time.monotonic() - start
        assert verify_solution(instance, result.assignment).ok
        assert elapsed < 30.0

    def test_rank3_200_events(self):
        instance = all_zero_triple_instance(200, cyclic_triples(200), 5)
        start = time.monotonic()
        result = solve(instance)
        elapsed = time.monotonic() - start
        assert verify_solution(instance, result.assignment).ok
        assert elapsed < 30.0


class TestDistributedScale:
    def test_scheduled_rank2_cycle_1000(self):
        instance = all_zero_edge_instance(cycle_graph(1000), 3)
        result = solve_distributed(instance)
        assert verify_solution(instance, result.assignment).ok
        # Flat-in-n: far fewer rounds than nodes.
        assert result.total_rounds < 100

    def test_protocol_rank3_150(self):
        instance = all_zero_triple_instance(150, cyclic_triples(150), 5)
        result = solve_distributed_local(instance)
        assert verify_solution(instance, result.assignment).ok
        assert result.schedule_rounds == 2 * result.palette


class TestCacheBehaviour:
    def test_probability_caches_stay_bounded(self):
        # Each event's cache is keyed by scope restrictions; over one
        # fixing run the number of distinct restrictions per event is
        # small (scope size is bounded), independent of n.
        instance = all_zero_edge_instance(cycle_graph(200), 3)
        solve(instance)
        for event in instance.events:
            assert event.cache_size <= 64
