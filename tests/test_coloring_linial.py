"""Unit tests for the Linial color reduction."""

import random

import pytest

from repro.errors import ColoringError
from repro.coloring import (
    LinialColoringAlgorithm,
    fixpoint_palette,
    is_proper_vertex_coloring,
    reduce_color,
    reduction_parameters,
    reduction_schedule,
)
from repro.generators import cycle_graph, random_regular_graph
from repro.local_model import Network, run_algorithm


class TestParameters:
    def test_no_progress_on_tiny_palette(self):
        assert reduction_parameters(1, 3) is None
        # For d = 3, the best achievable next palette is >= 49 (q >= 7),
        # so m = 30 cannot shrink.
        assert reduction_parameters(30, 3) is None

    def test_progress_on_large_palette(self):
        parameters = reduction_parameters(10**6, 4)
        assert parameters is not None
        q, k = parameters
        assert q >= 4 * k + 1
        assert q ** (k + 1) >= 10**6
        assert q * q < 10**6

    def test_fixpoint_is_poly_d(self):
        for d in (2, 3, 4, 8, 16):
            fixpoint = fixpoint_palette(10**9, d)
            # O(d^2): the smallest usable prime is < 4d for d >= 2
            # (Bertrand), so the fixpoint is below (4d)^2.
            assert fixpoint <= (4 * d + 2) ** 2

    def test_schedule_shrinks_monotonically(self):
        schedule = reduction_schedule(10**12, 5)
        palettes = [m for m, _q, _k in schedule]
        assert palettes == sorted(palettes, reverse=True)
        assert len(schedule) <= 6  # log*-ish, certainly tiny


class TestReduceColor:
    def test_new_color_in_range(self):
        m, q, k = 10**4, 23, 2
        color = 1234
        neighbors = [17, 9999, 42]
        new_color = reduce_color(color, neighbors, m, q, k)
        assert 0 <= new_color < q * q

    def test_distinguishes_neighbors_on_clique(self):
        # On a clique every pair is adjacent, so a joint reduction step
        # must keep all colors pairwise distinct.
        m, d = 10**4, 4
        q, k = reduction_parameters(m, d)
        rng = random.Random(0)
        for _trial in range(20):
            colors = rng.sample(range(m), d + 1)
            new_colors = [
                reduce_color(c, [o for o in colors if o != c], m, q, k)
                for c in colors
            ]
            assert len(set(new_colors)) == len(new_colors)

    def test_color_out_of_palette_rejected(self):
        with pytest.raises(ColoringError):
            reduce_color(200, [1], 100, 11, 1)

    def test_shared_color_rejected(self):
        with pytest.raises(ColoringError):
            reduce_color(5, [5], 100, 11, 1)


class TestAlgorithmEndToEnd:
    @pytest.mark.parametrize("n", [16, 64, 256])
    def test_cycle_coloring_proper(self, n):
        graph = cycle_graph(n)
        network = Network(graph)
        algorithm = LinialColoringAlgorithm(n, 2)
        result = run_algorithm(network, algorithm)
        colors = result.outputs
        assert is_proper_vertex_coloring(graph, colors)
        assert max(colors.values()) < algorithm.final_palette or (
            not algorithm.schedule
        )

    def test_regular_graph_coloring_proper(self):
        graph = random_regular_graph(100, 4, seed=9)
        network = Network(graph)
        algorithm = LinialColoringAlgorithm(100, 4)
        result = run_algorithm(network, algorithm)
        assert is_proper_vertex_coloring(graph, result.outputs)

    def test_rounds_equal_schedule_length(self):
        graph = cycle_graph(1000)
        network = Network(graph)
        algorithm = LinialColoringAlgorithm(1000, 2)
        result = run_algorithm(network, algorithm)
        assert result.rounds == len(algorithm.schedule)

    def test_log_star_growth(self):
        # Schedule length grows extremely slowly with the id space.
        lengths = [
            len(LinialColoringAlgorithm(10**power, 2).schedule)
            for power in (2, 4, 8, 16)
        ]
        assert lengths == sorted(lengths)
        assert lengths[-1] <= 5

    def test_initial_colors_via_inputs(self):
        graph = cycle_graph(8)
        network = Network(graph)
        # A valid 4-coloring as input, id space 4.
        inputs = {node: node % 4 for node in graph.nodes()}
        algorithm = LinialColoringAlgorithm(4, 2)
        result = run_algorithm(network, algorithm, inputs=inputs)
        assert is_proper_vertex_coloring(graph, result.outputs)

    def test_invalid_initial_color_rejected(self):
        graph = cycle_graph(4)
        network = Network(graph)
        algorithm = LinialColoringAlgorithm(10**6, 2)
        with pytest.raises(ColoringError):
            run_algorithm(network, algorithm, inputs={0: -3})
