"""Unit tests for the baseline algorithms (Moser-Tardos, search, sampling)."""

import pytest

from repro.errors import AlgorithmFailedError
from repro.baselines import (
    avoidance_probability,
    count_avoiding_assignments,
    distributed_moser_tardos,
    exhaustive_search,
    rejection_sampling,
    sequential_moser_tardos,
)
from repro.applications import sinkless_orientation_instance
from repro.generators import (
    all_zero_edge_instance,
    all_zero_triple_instance,
    cycle_graph,
    cyclic_triples,
    random_regular_graph,
)
from repro.lll import LLLInstance, verify_solution
from repro.probability import BadEvent, DiscreteVariable


class TestSequentialMoserTardos:
    def test_solves_below_threshold(self):
        instance = all_zero_edge_instance(cycle_graph(10), 3)
        result = sequential_moser_tardos(instance, seed=0)
        assert verify_solution(instance, result.assignment).ok

    def test_solves_at_threshold(self):
        # Sinkless orientation is beyond the deterministic fixers but
        # squarely within Moser-Tardos territory (ep(d+1) regime is
        # violated too, but the resampling still converges in practice
        # on small cubic graphs).
        instance = sinkless_orientation_instance(
            random_regular_graph(12, 3, seed=1)
        )
        result = sequential_moser_tardos(instance, seed=2)
        assert verify_solution(instance, result.assignment).ok

    def test_deterministic_given_seed(self):
        instance = all_zero_edge_instance(cycle_graph(8), 3)
        first = sequential_moser_tardos(instance, seed=5)
        second = sequential_moser_tardos(instance, seed=5)
        assert first.resamplings == second.resamplings
        assert first.assignment.as_dict() == second.assignment.as_dict()

    def test_budget_exhaustion_raises(self):
        # An unavoidable event: both coin values are bad.
        coin = DiscreteVariable.fair_coin("c")
        event = BadEvent("E", [coin], lambda values: True)
        instance = LLLInstance([event])
        with pytest.raises(AlgorithmFailedError):
            sequential_moser_tardos(instance, seed=0, max_resamplings=50)

    def test_rounds_equal_resamplings(self):
        instance = all_zero_edge_instance(cycle_graph(8), 3)
        result = sequential_moser_tardos(instance, seed=7)
        assert result.rounds == result.resamplings


class TestDistributedMoserTardos:
    def test_solves_below_threshold(self):
        instance = all_zero_triple_instance(9, cyclic_triples(9), 5)
        result = distributed_moser_tardos(instance, seed=0)
        assert verify_solution(instance, result.assignment).ok

    def test_solves_at_threshold(self):
        instance = sinkless_orientation_instance(
            random_regular_graph(16, 3, seed=3)
        )
        result = distributed_moser_tardos(instance, seed=4)
        assert verify_solution(instance, result.assignment).ok

    def test_rounds_at_most_resamplings(self):
        instance = all_zero_edge_instance(cycle_graph(12), 3)
        result = distributed_moser_tardos(instance, seed=6)
        assert result.rounds <= max(result.resamplings, 1)

    def test_budget_exhaustion_raises(self):
        coin = DiscreteVariable.fair_coin("c")
        event = BadEvent("E", [coin], lambda values: True)
        instance = LLLInstance([event])
        with pytest.raises(AlgorithmFailedError):
            distributed_moser_tardos(instance, seed=0, max_rounds=10)


class TestExhaustiveSearch:
    def test_finds_solution(self):
        instance = all_zero_edge_instance(cycle_graph(5), 2)
        solution = exhaustive_search(instance)
        assert solution is not None
        assert verify_solution(instance, solution).ok

    def test_detects_unsatisfiable(self):
        coin = DiscreteVariable.fair_coin("c")
        event = BadEvent("E", [coin], lambda values: True)
        instance = LLLInstance([event])
        assert exhaustive_search(instance) is None

    def test_count_avoiding(self):
        # Single event "both coins are 1": 3 of 4 outcomes avoid it.
        coins = [DiscreteVariable.fair_coin(f"c{i}") for i in range(2)]
        event = BadEvent.all_equal("E", coins, target=1)
        instance = LLLInstance([event])
        assert count_avoiding_assignments(instance) == 3

    def test_avoidance_probability(self):
        coins = [DiscreteVariable.fair_coin(f"c{i}") for i in range(2)]
        event = BadEvent.all_equal("E", coins, target=1)
        instance = LLLInstance([event])
        assert avoidance_probability(instance) == pytest.approx(0.75)

    def test_avoidance_probability_positive_under_lll(self):
        instance = all_zero_edge_instance(cycle_graph(6), 3)
        assert avoidance_probability(instance) > 0


class TestRejectionSampling:
    def test_succeeds_on_easy_instance(self):
        instance = all_zero_edge_instance(cycle_graph(6), 3)
        result = rejection_sampling(instance, seed=0)
        assert verify_solution(instance, result.assignment).ok
        assert result.attempts >= 1

    def test_fails_when_unsatisfiable(self):
        coin = DiscreteVariable.fair_coin("c")
        event = BadEvent("E", [coin], lambda values: True)
        instance = LLLInstance([event])
        with pytest.raises(AlgorithmFailedError):
            rejection_sampling(instance, seed=0, max_attempts=20)

    def test_deterministic_given_seed(self):
        instance = all_zero_edge_instance(cycle_graph(6), 3)
        first = rejection_sampling(instance, seed=9)
        second = rejection_sampling(instance, seed=9)
        assert first.attempts == second.attempts
