"""Unit tests for the export utilities."""

import csv

import pytest

from repro.errors import ReproError
from repro.analysis import (
    ExperimentRecord,
    records_to_markdown,
    render_surface_ascii,
    surface_to_csv,
)
from repro.geometry import boundary_surface


class TestSurfaceCsv:
    def test_writes_header_and_rows(self, tmp_path):
        path = tmp_path / "surface.csv"
        count = surface_to_csv(str(path), resolution=8)
        with open(path, newline="") as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["a", "b", "f"]
        assert len(rows) == count + 1

    def test_values_match_surface(self, tmp_path):
        path = tmp_path / "surface.csv"
        surface_to_csv(str(path), resolution=4)
        with open(path, newline="") as handle:
            next(handle)
            for line in csv.reader(handle):
                a, b, f = map(float, line)
                assert f == pytest.approx(boundary_surface(a, b), abs=1e-9)

    def test_triangular_count(self, tmp_path):
        path = tmp_path / "surface.csv"
        count = surface_to_csv(str(path), resolution=10)
        assert count == sum(11 - i for i in range(11))


class TestAsciiRendering:
    def test_shape(self):
        art = render_surface_ascii(width=20, height=10)
        lines = art.splitlines()
        assert len(lines) == 11  # 10 rows + legend
        assert "apex" in lines[-1]

    def test_apex_is_brightest(self):
        art = render_surface_ascii(width=30, height=15)
        lines = art.splitlines()[:-1]
        # Bottom-left corner is (a, b) = (0, 0): f = 4 -> '@'.
        assert lines[-1][0] == "@"
        # Top row has only the (0, 4) corner: f = 0 -> faint or blank.
        assert lines[0].strip() in ("", ".", ":")

    def test_outside_triangle_is_blank(self):
        art = render_surface_ascii(width=21, height=21)
        lines = art.splitlines()[:-1]
        # Top-right cell is (4, 4): far outside the domain.
        assert len(lines[0].rstrip()) < 21

    def test_size_validation(self):
        with pytest.raises(ReproError):
            render_surface_ascii(width=1, height=10)


class TestMarkdown:
    def test_table_structure(self):
        records = [
            ExperimentRecord("T", {"n": 1}, {"ok": True}),
            ExperimentRecord("T", {"n": 2}, {"ok": False}),
        ]
        table = records_to_markdown(records)
        lines = table.splitlines()
        assert lines[0].startswith("| experiment |")
        assert lines[1].startswith("|---")
        assert "yes" in lines[2]
        assert "no" in lines[3]

    def test_empty(self):
        assert records_to_markdown([]) == "(no rows)"

    def test_explicit_headers(self):
        records = [ExperimentRecord("T", {"n": 1}, {"ok": True})]
        table = records_to_markdown(records, headers=["n", "ok"])
        assert table.splitlines()[0] == "| n | ok |"
