"""The merged cross-process trace is a reproducible artifact.

The worker-shard protocol (docs/observability.md) promises that the
trace a ``ProcessScheduler`` run merges from its workers is

* **schema-valid** — every merged record passes ``check_events``,
  provenance fields included;
* **causally ordered** — a worker record never precedes the parent
  ``dispatch`` event whose span id it carries as ``parent_span``;
* **deterministic** — two runs of the same workload with a pinned
  ``run_id`` produce the same event stream once wall-clock noise
  (timestamps, durations, pids) is stripped: same events, same order,
  same worker attribution, same counters.  Logical worker ids
  (``worker:<chunk_id>``) exist precisely so this holds across process
  pools.

Under a deterministic fault schedule the same holds, *plus* the trace
keeps the telemetry of every attempt: a crashed chunk contributes the
records it flushed to its shard file before dying (tagged ``attempt
0``) and the records of the successful retry (``attempt 1``).
"""

from __future__ import annotations

import os

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.artifacts import STORE as ARTIFACT_STORE
from repro.core import solve_distributed
from repro.probability import engine
from repro.faults import FaultPlan
from repro.generators import (
    all_zero_edge_instance,
    all_zero_triple_instance,
    cycle_graph,
    cyclic_triples,
)
from repro.obs import check_events, recording
from repro.runtime import ProcessScheduler

POOL_SETTINGS = settings(
    deadline=None,
    max_examples=5,
    suppress_health_check=[HealthCheck.too_slow],
)

#: Payload keys that legitimately differ between reruns (clocks, pids,
#: in-flight timing); everything else must be bit-identical.
VOLATILE_PAYLOAD_KEYS = frozenset(
    {
        "wall_time",
        "duration_ns",
        "worker_ts_ns",
        "pid",
        "backoff_seconds",
        "error",
        "utilization",
    }
)

#: Summary events whose payloads aggregate *timing* values; only their
#: sample counts are stable across reruns.
TIMING_SUMMARY_EVENTS = frozenset({"histogram", "quantile", "snapshot"})


def normalize(events):
    """Strip wall-clock noise, keep everything the protocol promises."""
    normalized = []
    for event in events:
        record = {
            key: value
            for key, value in event.items()
            if key != "ts_ns"
        }
        payload = dict(record.get("payload") or {})
        if record.get("event") in TIMING_SUMMARY_EVENTS:
            payload = {
                key: payload.get(key)
                for key in ("metric_component", "name", "count")
                if key in payload
            }
        else:
            for key in VOLATILE_PAYLOAD_KEYS:
                payload.pop(key, None)
        record["payload"] = payload
        normalized.append(record)
    return normalized


def assert_causally_ordered(events):
    """Every merged worker record follows its parent dispatch event."""
    dispatch_seq = {
        event["payload"]["span_id"]: event["seq"]
        for event in events
        if event["event"] == "dispatch"
    }
    for event in events:
        parent = event.get("parent_span")
        if parent is None:
            continue
        assert parent in dispatch_seq, (
            f"worker record {event['seq']} references unknown dispatch "
            f"{parent!r}"
        )
        assert dispatch_seq[parent] < event["seq"], (
            f"worker record {event['seq']} precedes its dispatch {parent!r}"
        )


def traced_run(build, scheduler_factory):
    """One traced process-backend solve; returns (events, assignment)."""
    # Cold-trace contract: a warm artifact store elides kernel-compile /
    # coloring work (and hence their obs events) on reruns, so every
    # traced run starts from a cleared store — determinism is asserted
    # over the cold trace.  Transcript identity cold-vs-warm is covered
    # separately by tests/test_artifact_cache.py.  Engine counters are
    # reset too: the scheduler publishes stat *deltas* into the trace,
    # so work accrued outside the recording block must not leak into
    # the first run's published counts.
    ARTIFACT_STORE.clear()
    engine.reset_stats()
    with recording(run_id="determinism") as recorder:
        result = solve_distributed(build(), scheduler=scheduler_factory())
    events = list(recorder.memory.events)
    check_events(events)
    return events, result.assignment.as_dict()


def build_for(spec):
    family, n, alphabet = spec
    if family == "cycle":
        return lambda: all_zero_edge_instance(cycle_graph(n), alphabet)
    return lambda: all_zero_triple_instance(n, cyclic_triples(n), alphabet)


def specs():
    # Sizes start where the process scheduler actually dispatches (a
    # color class needs >= 2 dispatchable cells); smaller instances run
    # in-parent and would make the worker-attribution checks vacuous.
    cycles = st.tuples(
        st.just("cycle"),
        st.integers(min_value=10, max_value=16),
        st.integers(min_value=3, max_value=4),
    )
    triples = st.tuples(
        st.just("triples"),
        st.integers(min_value=12, max_value=18),
        st.integers(min_value=5, max_value=6),
    )
    return st.one_of(cycles, triples)


@POOL_SETTINGS
@given(spec=specs())
def test_merged_trace_deterministic(spec):
    build = build_for(spec)
    factory = lambda: ProcessScheduler(max_workers=2, min_dispatch_ops=1)
    first_events, first_assignment = traced_run(build, factory)
    second_events, second_assignment = traced_run(build, factory)

    assert first_assignment == second_assignment
    assert_causally_ordered(first_events)
    assert normalize(first_events) == normalize(second_events)

    # Every dispatched chunk is attributed: each dispatch's worker_id
    # shows up on at least one merged record.
    dispatched = {
        event["payload"]["worker_id"]
        for event in first_events
        if event["event"] == "dispatch"
    }
    attributed = {
        event["worker_id"]
        for event in first_events
        if event.get("worker_id")
    }
    assert dispatched, "workload too small: nothing was dispatched"
    assert dispatched == attributed


@POOL_SETTINGS
@given(seed=st.integers(min_value=0, max_value=7))
def test_merged_trace_deterministic_under_faults(seed):
    # A crashed worker (os._exit) tears down the whole process pool, so
    # with several workers the *sibling* chunks' fates race the breakage
    # — one run sees them complete, another sees them retried.  Both
    # transcripts merge to the same solver output, but only a single
    # worker gives the crash/retry schedule one interleaving, which is
    # what lets this test demand event-for-event equality.
    build = build_for(("triples", 15, 5))
    factory = lambda: ProcessScheduler(
        max_workers=1,
        min_dispatch_ops=1,
        backoff_base=0.0,
        deadline=20.0,
        fault_plan=FaultPlan(
            seed=seed,
            explicit_chunks=((0, "crash"),),
        ),
    )
    first_events, first_assignment = traced_run(build, factory)
    second_events, second_assignment = traced_run(build, factory)

    assert first_assignment == second_assignment
    assert_causally_ordered(first_events)
    assert normalize(first_events) == normalize(second_events)

    # The crashed chunk keeps both attempts in the merged trace: the
    # shard-file records of the dying attempt 0 and the piggybacked
    # records of the clean retry, distinguished by the attempt tag.
    attempts = {
        event.get("attempt")
        for event in first_events
        if event.get("worker_id") == "worker:0"
    }
    assert attempts == {0, 1}
    injected = [
        event
        for event in first_events
        if event["event"] == "fault_injected"
    ]
    assert len(injected) == 1
    assert injected[0]["attempt"] == 0
    assert injected[0]["payload"]["kind"] == "crash"
    # The parent saw the death and recorded the recovery pair.
    kinds = {event["event"] for event in first_events}
    assert "fault" in kinds and "retry" in kinds


def test_merged_trace_deterministic_under_env_fault_spec():
    """The REPRO_FAULTS ambient spec drives the same reproducible trace."""
    build = build_for(("triples", 15, 5))
    previous = os.environ.get("REPRO_FAULTS")
    os.environ["REPRO_FAULTS"] = "seed=3,crash@0,deadline=20"
    try:
        factory = lambda: ProcessScheduler(
            max_workers=1, min_dispatch_ops=1, backoff_base=0.0
        )
        first_events, first_assignment = traced_run(build, factory)
        second_events, second_assignment = traced_run(build, factory)
    finally:
        if previous is None:
            del os.environ["REPRO_FAULTS"]
        else:
            os.environ["REPRO_FAULTS"] = previous
    assert first_assignment == second_assignment
    assert normalize(first_events) == normalize(second_events)
    assert any(
        event["event"] == "fault_injected" for event in first_events
    )
