"""Tests for the distributed scheduler's internal safety checks."""

import pytest

from repro.errors import SimulationError
from repro.core.distributed import (
    _assert_round_disjoint,
    _indexed_dependency_network,
)
from repro.core.local_protocol import LocalFixingProtocol
from repro.generators import (
    all_zero_edge_instance,
    all_zero_triple_instance,
    cycle_graph,
    cyclic_triples,
)
from repro.local_model.algorithm import NodeState


class TestRoundDisjointness:
    def test_accepts_disjoint_variables(self):
        instance = all_zero_edge_instance(cycle_graph(6), 3)
        # Edges {0,1} and {3,4} share no event.
        _assert_round_disjoint(
            instance, [("edge", 0, 1), ("edge", 3, 4)]
        )

    def test_rejects_conflicting_variables(self):
        instance = all_zero_edge_instance(cycle_graph(6), 3)
        # Edges {0,1} and {1,2} share event 1.
        with pytest.raises(SimulationError, match="conflict"):
            _assert_round_disjoint(
                instance, [("edge", 0, 1), ("edge", 1, 2)]
            )

    def test_rejects_triple_conflicts(self):
        instance = all_zero_triple_instance(9, cyclic_triples(9), 5)
        # Adjacent triples share events.
        with pytest.raises(SimulationError):
            _assert_round_disjoint(
                instance, [("tri", 0, 1, 2), ("tri", 1, 2, 3)]
            )


class TestIndexedNetwork:
    def test_round_trip_mapping(self):
        instance = all_zero_edge_instance(cycle_graph(6), 3)
        network, to_index, from_index = _indexed_dependency_network(instance)
        assert network.num_nodes == 6
        for name, index in to_index.items():
            assert from_index[index] == name

    def test_structure_preserved(self):
        instance = all_zero_triple_instance(9, cyclic_triples(9), 5)
        network, to_index, _from_index = _indexed_dependency_network(instance)
        dependency = instance.dependency_graph
        assert network.graph.number_of_edges() == dependency.number_of_edges()
        for u, v in dependency.edges():
            assert network.graph.has_edge(to_index[u], to_index[v])


class TestProtocolMerging:
    def _node(self):
        node = NodeState(0, (1,))
        node.memory["fixed"] = {}
        node.memory["phi"] = {((0, 1), 0): (0, 1.0), ((0, 1), 1): (0, 1.0)}
        return node

    def test_fixed_merge_accepts_agreement(self):
        node = self._node()
        LocalFixingProtocol._merge_fixed(node, {"x": 1})
        LocalFixingProtocol._merge_fixed(node, {"x": 1})
        assert node.memory["fixed"]["x"] == 1

    def test_fixed_merge_rejects_conflict(self):
        node = self._node()
        LocalFixingProtocol._merge_fixed(node, {"x": 1})
        with pytest.raises(SimulationError, match="conflicting values"):
            LocalFixingProtocol._merge_fixed(node, {"x": 2})

    def test_phi_merge_prefers_higher_version(self):
        node = self._node()
        LocalFixingProtocol._merge_phi(node, {((0, 1), 0): (2, 0.5)})
        assert node.memory["phi"][((0, 1), 0)] == (2, 0.5)
        # A stale lower-version update is ignored.
        LocalFixingProtocol._merge_phi(node, {((0, 1), 0): (1, 1.7)})
        assert node.memory["phi"][((0, 1), 0)] == (2, 0.5)

    def test_phi_merge_rejects_same_version_conflict(self):
        node = self._node()
        LocalFixingProtocol._merge_phi(node, {((0, 1), 0): (3, 0.5)})
        with pytest.raises(SimulationError, match="conflicting phi"):
            LocalFixingProtocol._merge_phi(node, {((0, 1), 0): (3, 0.9)})

    def test_phi_merge_tolerates_equal_values(self):
        node = self._node()
        LocalFixingProtocol._merge_phi(node, {((0, 1), 0): (3, 0.5)})
        LocalFixingProtocol._merge_phi(node, {((0, 1), 0): (3, 0.5)})
        assert node.memory["phi"][((0, 1), 0)] == (3, 0.5)
