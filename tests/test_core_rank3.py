"""Unit tests for the rank-3 fixer (Theorem 1.3 / Lemma 3.2)."""

import random

import pytest

from repro.errors import (
    CriterionViolationError,
    PStarViolationError,
    RankViolationError,
)
from repro.core import Rank3Fixer, solve_rank3
from repro.generators import (
    all_zero_triple_instance,
    cyclic_triples,
    mixed_rank_instance,
    grid_graph,
    partition_rounds_triples,
    random_triples,
)
from repro.lll import verify_solution


class TestPreconditions:
    def test_rejects_rank4(self):
        from repro.lll import LLLInstance
        from repro.probability import BadEvent, DiscreteVariable

        shared = DiscreteVariable("s", tuple(range(64)))
        events = [
            BadEvent.all_equal(f"E{i}", [shared], target=0) for i in range(4)
        ]
        instance = LLLInstance(events)
        with pytest.raises(RankViolationError):
            Rank3Fixer(instance)

    def test_rejects_at_threshold(self):
        # Disjoint triples: every node in exactly one, d = 2, and with
        # alphabet 4 each event has p = 1/4 = 2^-d exactly.
        triples = [(0, 1, 2), (3, 4, 5), (6, 7, 8)]
        instance = all_zero_triple_instance(9, triples, 4)
        with pytest.raises(CriterionViolationError):
            Rank3Fixer(instance)

    def test_threshold_check_can_be_disabled(self):
        triples = [(0, 1, 2), (3, 4, 5), (6, 7, 8)]
        instance = all_zero_triple_instance(9, triples, 4)
        Rank3Fixer(instance, require_criterion=False)


class TestFixing:
    def test_solves_cyclic_triples(self, small_rank3_instance):
        result = solve_rank3(small_rank3_instance)
        assert verify_solution(small_rank3_instance, result.assignment).ok

    def test_solves_partition_rounds(self):
        triples = partition_rounds_triples(18, 2, seed=0)
        instance = all_zero_triple_instance(18, triples, 5)
        result = solve_rank3(instance)
        assert verify_solution(instance, result.assignment).ok

    def test_solves_random_triples(self):
        triples = random_triples(15, num_triples=10, max_per_node=3, seed=2)
        # Irregular triple counts: a node in t triples has p = 7^-t and
        # dependency degree at most 2t, satisfying the *local* criterion.
        instance = all_zero_triple_instance(15, triples, 7)
        result = solve_rank3(instance, require_criterion="local")
        assert verify_solution(instance, result.assignment).ok

    def test_solves_mixed_ranks(self):
        triples = [(0, 1, 2), (3, 4, 5), (6, 7, 8), (0, 4, 8)]
        instance = mixed_rank_instance(grid_graph(3, 3), triples, 4, 5)
        result = solve_rank3(instance)
        assert verify_solution(instance, result.assignment).ok

    def test_every_order_succeeds(self):
        rng = random.Random(0)
        for trial in range(8):
            instance = all_zero_triple_instance(9, cyclic_triples(9), 5)
            names = [v.name for v in instance.variables]
            rng.shuffle(names)
            result = solve_rank3(instance, order=list(names))
            assert verify_solution(instance, result.assignment).ok

    def test_biased_distributions(self):
        # Non-uniform triple variables: zero-probability 0.1 per variable;
        # p = 0.1^3 = 1e-3 < 2^-4.
        probabilities = (0.1, 0.45, 0.45)
        instance = all_zero_triple_instance(
            9, cyclic_triples(9), 3, probabilities=probabilities
        )
        result = solve_rank3(instance)
        assert verify_solution(instance, result.assignment).ok

    def test_double_fix_rejected(self, small_rank3_instance):
        fixer = Rank3Fixer(small_rank3_instance)
        name = small_rank3_instance.variables[0].name
        fixer.fix_variable(name)
        with pytest.raises(PStarViolationError):
            fixer.fix_variable(name)


class TestPStarMaintenance:
    def test_pstar_holds_after_every_step(self):
        instance = all_zero_triple_instance(9, cyclic_triples(9), 5)
        fixer = Rank3Fixer(instance, validate_invariant=True)
        result = fixer.run()
        assert verify_solution(instance, result.assignment).ok

    def test_final_bounds_below_one(self, small_rank3_instance):
        result = solve_rank3(small_rank3_instance)
        assert result.max_certified_bound < 1.0

    def test_non_evil_value_always_exists(self, small_rank3_instance):
        # Lemma 3.2: at least one candidate value is non-evil at every step.
        result = solve_rank3(small_rank3_instance)
        for step in result.steps:
            assert step.num_good_values >= 1

    def test_final_probabilities_are_zero(self, small_rank3_instance):
        result = solve_rank3(small_rank3_instance)
        for event in small_rank3_instance.events:
            assert event.probability(result.assignment) == 0.0

    def test_edge_values_stay_in_range(self):
        instance = all_zero_triple_instance(9, cyclic_triples(9), 5)
        fixer = Rank3Fixer(instance)
        for variable in instance.variables:
            fixer.fix_variable(variable.name)
            for (edge_key, side), value in fixer.pstar.snapshot().items():
                assert -1e-9 <= value <= 2.0 + 1e-9

    def test_step_records_have_three_events_for_triples(
        self, small_rank3_instance
    ):
        result = solve_rank3(small_rank3_instance)
        for step in result.steps:
            assert len(step.events) == 3
            assert len(step.increases) == 3
