"""Shared fixtures for the test suite."""

from __future__ import annotations

import json
import os
import random
import signal

import pytest

from repro.artifacts.store import STORE as _ARTIFACT_STORE

from repro.generators import (
    all_zero_edge_instance,
    all_zero_triple_instance,
    cycle_graph,
    cyclic_triples,
    random_regular_graph,
)

# ----------------------------------------------------------------------
# Hang guard: fail fast instead of wedging the whole suite.
#
# A regression in the fault-tolerant dispatch loop (a missed deadline, a
# retry loop that never terminates) would previously hang pytest until
# the CI-level job timeout.  Arm a per-test alarm so such a regression
# fails as one red test with a traceback.  ``REPRO_TEST_TIMEOUT``
# overrides the budget in seconds; ``0`` disables the guard.  Platforms
# without ``SIGALRM`` (Windows) simply skip it.
# ----------------------------------------------------------------------

_TEST_TIMEOUT = int(os.environ.get("REPRO_TEST_TIMEOUT", "180"))


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    if _TEST_TIMEOUT <= 0 or not hasattr(signal, "SIGALRM"):
        yield
        return

    def _on_timeout(signum, frame):
        raise TimeoutError(
            f"test exceeded {_TEST_TIMEOUT}s "
            f"(REPRO_TEST_TIMEOUT; 0 disables the guard)"
        )

    previous = signal.signal(signal.SIGALRM, _on_timeout)
    signal.alarm(_TEST_TIMEOUT)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)


@pytest.fixture(autouse=True)
def _clear_artifact_store():
    """Each test starts with a cold artifact store.

    The store is process-global by design (cross-instance reuse is the
    point); without this, a test's kernel/plan/template hit counts
    would depend on which tests ran before it.
    """
    _ARTIFACT_STORE.clear()
    yield


@pytest.fixture
def rng():
    """A deterministic RNG for tests."""
    return random.Random(12345)


@pytest.fixture
def small_rank2_instance():
    """A 12-node cycle, alphabet 3: p = 1/9 < 1/4 = 2^-d."""
    return all_zero_edge_instance(cycle_graph(12), 3)


@pytest.fixture
def regular_rank2_instance():
    """A 16-node 4-regular graph, alphabet 3: p = 3^-4 < 2^-4."""
    return all_zero_edge_instance(random_regular_graph(16, 4, seed=7), 3)


@pytest.fixture
def small_rank3_instance():
    """Cyclic triples on 9 nodes, alphabet 5: p = 5^-3 < 2^-4."""
    return all_zero_triple_instance(9, cyclic_triples(9), 5)


@pytest.fixture
def benchmark_results_dir(tmp_path_factory):
    """A benchmark results directory that is guaranteed to exist.

    Prefers the checked-in ``benchmarks/results`` artifacts; when those
    have not been generated (a fresh clone, a CI shard that skips the
    benchmark stage) it writes a minimal synthetic artifact set to a
    temporary directory, so the report-consuming tests always run
    instead of skipping.
    """
    real = os.path.join(
        os.path.dirname(__file__), "..", "benchmarks", "results"
    )
    if os.path.isdir(real) and any(
        name.endswith(".json") for name in os.listdir(real)
    ):
        return real
    synthetic = tmp_path_factory.mktemp("bench-results")
    artifacts = {
        "T5": [
            {
                "experiment": "T5",
                "regime": "below threshold",
                "n": 12,
                "value": 1.0,
            },
            {
                "experiment": "T5",
                "regime": "at threshold",
                "n": 12,
                "value": 0.0,
            },
        ],
        "F1": [{"experiment": "F1", "artifact": "grid", "points": 861}],
    }
    for experiment, rows in artifacts.items():
        (synthetic / f"{experiment}.json").write_text(json.dumps(rows))
    return str(synthetic)
