"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.generators import (
    all_zero_edge_instance,
    all_zero_triple_instance,
    cycle_graph,
    cyclic_triples,
    random_regular_graph,
)


@pytest.fixture
def rng():
    """A deterministic RNG for tests."""
    return random.Random(12345)


@pytest.fixture
def small_rank2_instance():
    """A 12-node cycle, alphabet 3: p = 1/9 < 1/4 = 2^-d."""
    return all_zero_edge_instance(cycle_graph(12), 3)


@pytest.fixture
def regular_rank2_instance():
    """A 16-node 4-regular graph, alphabet 3: p = 3^-4 < 2^-4."""
    return all_zero_edge_instance(random_regular_graph(16, 4, seed=7), 3)


@pytest.fixture
def small_rank3_instance():
    """Cyclic triples on 9 nodes, alphabet 5: p = 5^-3 < 2^-4."""
    return all_zero_triple_instance(9, cyclic_triples(9), 5)
