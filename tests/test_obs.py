"""Unit tests for the observability layer (repro.obs)."""

from __future__ import annotations

import json
import time

import pytest

from repro.errors import ObsError
from repro.obs import (
    DEFAULT_BUCKETS,
    Histogram,
    JsonlSink,
    MemorySink,
    ObsEvent,
    Recorder,
    active,
    check_events,
    install,
    percentile,
    read_trace,
    recording,
    render_summary,
    render_trace,
    span,
    summarize_trace,
    uninstall,
    validate_event,
)


@pytest.fixture(autouse=True)
def _no_leaked_recorder():
    """Every test starts and ends with observability disabled."""
    uninstall()
    yield
    uninstall()


class TestRecorderEvents:
    def test_events_reach_memory_sink_with_sequential_seq(self):
        recorder = Recorder()
        recorder.event("demo", "first", step=0, answer=42)
        recorder.event("demo", "second", round=3)
        events = recorder.memory.events
        # run_start + the two user events.
        assert [e["event"] for e in events] == ["run_start", "first", "second"]
        assert [e["seq"] for e in events] == [0, 1, 2]
        assert events[1]["step"] == 0 and "round" not in events[1]
        assert events[2]["round"] == 3 and "step" not in events[2]
        assert events[1]["payload"] == {"answer": 42}
        assert all(e["run_id"] == recorder.run_id for e in events)

    def test_timestamps_are_monotonic(self):
        recorder = Recorder()
        for index in range(5):
            recorder.event("demo", f"e{index}")
        stamps = [e["ts_ns"] for e in recorder.memory.events]
        assert stamps == sorted(stamps)
        assert all(ts >= 0 for ts in stamps)

    def test_closed_recorder_rejects_events(self):
        recorder = Recorder()
        recorder.close()
        with pytest.raises(ObsError):
            recorder.event("demo", "late")

    def test_close_is_idempotent(self):
        recorder = Recorder()
        recorder.count("demo", "things")
        recorder.close()
        count = len(recorder.memory.events)
        recorder.close()
        assert len(recorder.memory.events) == count


class TestSpans:
    def test_span_records_positive_duration(self):
        recorder = Recorder()
        with recorder.span("demo", "work"):
            time.sleep(0.001)
        (duration,) = recorder.span_durations[("demo", "work")]
        assert duration >= 1_000_000  # at least the 1ms sleep

    def test_nested_spans_track_depth_and_nest_durations(self):
        recorder = Recorder()
        with recorder.span("demo", "outer"):
            with recorder.span("demo", "inner"):
                time.sleep(0.001)
        span_events = [
            e for e in recorder.memory.events if e["event"] == "span"
        ]
        by_name = {e["payload"]["name"]: e["payload"] for e in span_events}
        assert by_name["outer"]["depth"] == 0
        assert by_name["inner"]["depth"] == 1
        # The parent strictly contains the child.
        assert by_name["outer"]["duration_ns"] >= by_name["inner"]["duration_ns"]
        # Inner completes (and is emitted) before outer.
        assert [e["payload"]["name"] for e in span_events] == ["inner", "outer"]

    def test_span_survives_exceptions(self):
        recorder = Recorder()
        with pytest.raises(ValueError):
            with recorder.span("demo", "failing"):
                raise ValueError("boom")
        assert ("demo", "failing") in recorder.span_durations
        assert recorder._span_stack == []

    def test_record_span_aggregates(self):
        recorder = Recorder()
        recorder.record_span("demo", "manual", 500)
        recorder.record_span("demo", "manual", 1500)
        assert recorder.span_durations[("demo", "manual")] == [500, 1500]


class TestCountersAndHistograms:
    def test_counter_accumulates(self):
        recorder = Recorder()
        assert recorder.count("demo", "steps") == 1
        assert recorder.count("demo", "steps", 4) == 5
        assert recorder.counter_value("demo", "steps") == 5
        assert recorder.counter_value("demo", "missing") == 0

    def test_counter_rejects_negative_delta(self):
        recorder = Recorder()
        with pytest.raises(ObsError):
            recorder.count("demo", "steps", -1)

    def test_histogram_bucket_placement(self):
        histogram = Histogram(bounds=(1.0, 2.0, 4.0))
        for value in (0.5, 1.0, 1.5, 3.0, 100.0):
            histogram.observe(value)
        # <=1: {0.5, 1.0}; <=2: {1.5}; <=4: {3.0}; overflow: {100.0}
        assert histogram.counts == [2, 1, 1, 1]
        assert histogram.count == 5
        assert histogram.min == 0.5
        assert histogram.max == 100.0
        assert histogram.total == pytest.approx(106.0)
        assert histogram.mean == pytest.approx(106.0 / 5)

    def test_histogram_rejects_unsorted_bounds(self):
        with pytest.raises(ObsError):
            Histogram(bounds=(2.0, 1.0))

    def test_observe_reuses_first_buckets(self):
        recorder = Recorder()
        recorder.observe("demo", "margin", 0.5, bounds=(1.0, 2.0))
        recorder.observe("demo", "margin", 1.5, bounds=(10.0,))
        histogram = recorder.histograms[("demo", "margin")]
        assert histogram.bounds == (1.0, 2.0)
        assert histogram.counts == [1, 1, 0]

    def test_close_flushes_summary_events(self):
        recorder = Recorder()
        recorder.count("demo", "steps", 7)
        recorder.observe("demo", "margin", 0.5)
        recorder.close()
        events = recorder.memory.events
        counters = [e for e in events if e["event"] == "counter"]
        histograms = [e for e in events if e["event"] == "histogram"]
        assert len(counters) == 1
        assert counters[0]["payload"]["metric_component"] == "demo"
        assert counters[0]["payload"]["name"] == "steps"
        assert counters[0]["payload"]["value"] == 7
        assert len(histograms) == 1
        assert histograms[0]["payload"]["count"] == 1
        assert events[-1]["event"] == "run_end"


class TestDisabledPath:
    def test_active_is_none_by_default(self):
        assert active() is None

    def test_module_span_is_noop_when_disabled(self):
        noop = span("demo", "anything")
        with noop:
            pass
        with noop:  # reentrant and reusable
            pass
        assert active() is None

    def test_install_uninstall_roundtrip(self):
        recorder = Recorder()
        assert install(recorder) is recorder
        assert active() is recorder
        assert uninstall() is recorder
        assert active() is None

    def test_instrumented_code_emits_nothing_when_disabled(self):
        from repro.core import solve_rank2
        from repro.generators import all_zero_edge_instance, cycle_graph

        result = solve_rank2(all_zero_edge_instance(cycle_graph(6), 3))
        assert result.num_steps == 6
        assert active() is None

    def test_recording_restores_previous_recorder(self):
        outer = install(Recorder())
        with recording() as inner:
            assert active() is inner
        assert active() is outer


class TestSchema:
    def _valid(self):
        return ObsEvent(
            run_id="abc", seq=0, ts_ns=1, component="demo", event="x",
        ).as_dict()

    def test_valid_event_passes(self):
        assert validate_event(self._valid()) == []

    def test_missing_field_flagged(self):
        record = self._valid()
        del record["run_id"]
        assert any("run_id" in p for p in validate_event(record))

    def test_wrong_types_flagged(self):
        record = self._valid()
        record["seq"] = "zero"
        record["component"] = 7
        problems = validate_event(record)
        assert any("seq" in p for p in problems)
        assert any("component" in p for p in problems)

    def test_bool_not_accepted_as_int(self):
        record = self._valid()
        record["seq"] = True
        assert any("seq" in p for p in validate_event(record))

    def test_optional_positions_checked(self):
        record = self._valid()
        record["step"] = "three"
        assert any("step" in p for p in validate_event(record))
        record["step"] = 3
        assert validate_event(record) == []

    def test_check_events_raises_with_details(self):
        records = [self._valid(), {"nonsense": 1}]
        with pytest.raises(ObsError, match="event 1"):
            check_events(records)
        assert check_events([self._valid()]) == 1


class TestJsonlRoundTrip:
    def test_round_trip_preserves_events(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        with recording(path=path) as recorder:
            recorder.event("demo", "fix", step=0, variable="x", value=1)
            recorder.count("demo", "steps")
            with recorder.span("demo", "work"):
                pass
        events = read_trace(path, validate=True)
        kinds = [(e["component"], e["event"]) for e in events]
        assert ("demo", "fix") in kinds
        assert ("demo", "span") in kinds
        assert ("obs", "counter") in kinds
        assert kinds[0] == ("obs", "run_start")
        assert kinds[-1] == ("obs", "run_end")
        fix = next(e for e in events if e["event"] == "fix")
        assert fix["payload"] == {"variable": "x", "value": 1}

    def test_non_json_payloads_fall_back_to_repr(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        with recording(path=path) as recorder:
            recorder.event("demo", "fix", variable=("tri", 1, 2), data={1, 2})
        events = read_trace(path, validate=True)
        payload = next(e for e in events if e["event"] == "fix")["payload"]
        # Tuples are JSON-native (serialized as arrays); sets are not and
        # fall back to repr.
        assert payload["variable"] == ["tri", 1, 2]
        assert payload["data"] in (repr({1, 2}), repr({2, 1}))

    def test_append_mode_accumulates_runs(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        with recording(path=path, run_id="one"):
            pass
        with recording(path=path, append=True, run_id="two"):
            pass
        events = read_trace(path, validate=True)
        assert {e["run_id"] for e in events} == {"one", "two"}

    def test_unparseable_line_raises(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"run_id": "x"}\nnot json\n')
        with pytest.raises(ObsError, match="not valid JSON"):
            read_trace(str(path))

    def test_closed_jsonl_sink_rejects_emit(self, tmp_path):
        sink = JsonlSink(str(tmp_path / "t.jsonl"))
        sink.close()
        with pytest.raises(ObsError):
            sink.emit(ObsEvent("r", 0, 0, "c", "e"))


class TestSummary:
    def test_percentile(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 50) == pytest.approx(2.5)
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 4.0
        assert percentile([7.0], 95) == 7.0
        assert percentile([], 50) != percentile([], 50)  # NaN

    def test_summarize_counts_spans_counters_and_rounds(self):
        with recording() as recorder:
            with recorder.span("fixer.rank3", "fix"):
                pass
            with recorder.span("fixer.rank3", "fix"):
                pass
            recorder.count("simulator", "messages", 10)
            recorder.event("simulator", "round", round=1, messages=4)
            recorder.event("simulator", "round", round=2, messages=6)
            recorder.observe("fixer.rank3", "margin", 0.5)
        summary = summarize_trace(recorder.memory.events)
        stats = summary.spans[("fixer.rank3", "fix")]
        assert stats.count == 2
        assert stats.total_ns >= stats.p50_ns
        assert summary.counters[("simulator", "messages")] == 10
        assert summary.rounds == 2
        assert summary.messages == 10
        assert ("fixer.rank3", "margin") in summary.histograms
        assert summary.run_ids == [recorder.run_id]

    def test_render_summary_and_trace_are_printable(self):
        with recording() as recorder:
            with recorder.span("demo", "work"):
                pass
            recorder.count("demo", "steps", 2)
            recorder.observe("demo", "margin", 0.3)
            recorder.event("demo", "fix", step=0, variable="x")
        events = recorder.memory.events
        report = render_summary(summarize_trace(events))
        assert "spans" in report
        assert "counters" in report
        assert "histogram demo/margin" in report
        listing = render_trace(events, component="demo", kind="fix")
        assert "1 matching events" in listing
        assert "variable='x'" in listing

    def test_render_trace_limit(self):
        with recording() as recorder:
            for index in range(5):
                recorder.event("demo", "tick", step=index)
        listing = render_trace(
            recorder.memory.events, kind="tick", limit=2
        )
        assert "5 matching events (showing last 2)" in listing
        assert "step=3" in listing and "step=4" in listing
        assert "step=0" not in listing

    def test_multi_run_histogram_merge(self):
        sink = MemorySink()
        with recording(sink=sink, run_id="one") as recorder:
            recorder.observe("demo", "margin", 0.5, bounds=(1.0, 2.0))
        with recording(sink=sink, run_id="two") as recorder:
            recorder.observe("demo", "margin", 1.5, bounds=(1.0, 2.0))
        summary = summarize_trace(sink.events)
        merged = summary.histograms[("demo", "margin")]
        assert merged["count"] == 2
        assert merged["counts"] == [1, 1, 0]
        assert summary.run_ids == ["one", "two"]


class TestGaugesAndQuantiles:
    def test_gauge_tracks_last_value_and_extremes(self):
        from repro.obs import Gauge

        gauge = Gauge()
        assert gauge.as_dict() == {
            "value": None, "min": None, "max": None, "updates": 0,
        }
        for value in (3, 9, 1):
            gauge.set(value)
        assert gauge.as_dict() == {
            "value": 1.0, "min": 1.0, "max": 9.0, "updates": 3,
        }

    def test_quantile_histogram_estimates_within_one_bucket(self):
        from repro.obs import QuantileHistogram

        histogram = QuantileHistogram()
        samples = list(range(1, 1001))
        for sample in samples:
            histogram.observe(sample)
        assert histogram.count == 1000
        for q in (50, 95, 99):
            exact = percentile(samples, q)
            estimate = histogram.quantile(q)
            # One log-bucket of relative error at the default growth.
            assert abs(estimate - exact) / exact < 0.10, (q, estimate, exact)
        report = histogram.quantiles()
        assert set(report) == {"p50", "p95", "p99"}
        assert report["p50"] <= report["p95"] <= report["p99"]

    def test_quantile_histogram_edge_cases(self):
        from repro.obs import QuantileHistogram

        histogram = QuantileHistogram()
        assert histogram.quantile(50) != histogram.quantile(50)  # NaN
        histogram.observe(0.0)
        histogram.observe(-2.0)
        assert histogram.zero == 2
        assert histogram.quantile(50) == -2.0
        histogram.observe(100.0)
        assert histogram.quantile(99) == 100.0
        with pytest.raises(ObsError):
            histogram.quantile(101)
        with pytest.raises(ObsError):
            QuantileHistogram(growth=1.0)

    def test_quantile_histogram_merge_requires_same_growth(self):
        from repro.obs import QuantileHistogram

        left = QuantileHistogram()
        right = QuantileHistogram()
        for value in (1, 10, 100):
            left.observe(value)
            right.observe(value * 2)
        merged = QuantileHistogram()
        merged.merge_dict(left.as_dict())
        merged.merge_dict(right.as_dict())
        assert merged.count == 6
        assert merged.min == 1.0 and merged.max == 200.0
        other = QuantileHistogram(growth=2.0)
        with pytest.raises(ObsError):
            merged.merge_dict(other.as_dict())

    def test_recorder_flushes_gauge_and_quantile_summaries(self):
        recorder = Recorder(run_id="metrics")
        recorder.gauge("runtime", "queue", 4)
        recorder.gauge("runtime", "queue", 2)
        assert recorder.gauge_value("runtime", "queue") == 2.0
        assert recorder.gauge_value("runtime", "absent") is None
        for value in (10, 20, 30):
            recorder.observe_quantile("runtime", "latency_ns", value)
        recorder.close()
        events = recorder.memory.events
        assert check_events(events) == len(events)
        (gauge,) = [e for e in events if e["event"] == "gauge"]
        assert gauge["payload"]["metric_component"] == "runtime"
        assert gauge["payload"]["name"] == "queue"
        assert gauge["payload"]["value"] == 2.0
        (quantile,) = [e for e in events if e["event"] == "quantile"]
        assert quantile["payload"]["count"] == 3
        assert "p99" in quantile["payload"]

    def test_snapshot_publishes_live_values_mid_run(self):
        with recording(run_id="snap") as recorder:
            recorder.count("runtime", "cells", 7)
            recorder.gauge("runtime", "queue", 3)
            recorder.observe_quantile("runtime", "latency_ns", 50)
            event = recorder.snapshot(reason="test").as_dict()
        assert event["event"] == "snapshot"
        payload = event["payload"]
        assert payload["reason"] == "test"
        assert payload["counters"]["runtime/cells"] == 7
        assert payload["gauges"]["runtime/queue"] == 3.0
        assert set(payload["quantiles"]["runtime/latency_ns"]) == {
            "p50", "p95", "p99",
        }

    def test_maybe_snapshot_respects_interval(self):
        with recording(run_id="snap", snapshot_interval=3600.0) as recorder:
            first = recorder.maybe_snapshot()
            second = recorder.maybe_snapshot()
        # The recording() entry stamps the interval clock, so nothing
        # fires within the hour; without an interval it never fires.
        assert first is None and second is None
        with recording(run_id="snap2") as recorder:
            assert recorder.maybe_snapshot() is None


class TestStreamingTraceReaders:
    def build_trace(self, path, count=5):
        with recording(path=str(path), run_id="stream") as recorder:
            for index in range(count):
                recorder.event("demo", "tick", step=index)

    def test_iter_trace_is_lazy_and_equivalent_to_read_trace(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        self.build_trace(path)
        iterator = iter((read_trace(str(path))))
        from repro.obs import iter_trace

        lazy = iter_trace(str(path))
        assert next(lazy)["event"] == next(iterator)["event"]
        assert list(lazy) == list(iterator)

    def test_iter_trace_validates_on_demand(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"seq": 0}\n')
        from repro.obs import iter_trace

        assert len(list(iter_trace(str(path)))) == 1
        with pytest.raises(ObsError):
            list(iter_trace(str(path), validate=True))

    def test_summarize_trace_file_streams(self, tmp_path):
        from repro.obs.summary import summarize_trace_file

        path = tmp_path / "trace.jsonl"
        self.build_trace(path, count=3)
        summary = summarize_trace_file(str(path), validate=True)
        assert summary.events_by_kind[("demo", "tick")] == 3

    def test_follow_trace_stops_on_balanced_run_end(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        self.build_trace(path)  # recording() emits run_start/run_end
        from repro.obs import follow_trace

        events = list(follow_trace(str(path), poll_seconds=0.01))
        assert events[0]["event"] == "run_start"
        assert events[-1]["event"] == "run_end"

    def test_follow_trace_idle_timeout(self, tmp_path):
        path = tmp_path / "endless.jsonl"
        # run_start without run_end: only the idle timeout stops this.
        path.write_text(
            '{"run_id": "r", "seq": 0, "ts_ns": 0, "component": "obs",'
            ' "event": "run_start", "payload": {}}\n'
        )
        from repro.obs import follow_trace

        events = list(
            follow_trace(str(path), poll_seconds=0.01, idle_timeout=0.05)
        )
        assert len(events) == 1

    def test_follow_trace_custom_stop(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        self.build_trace(path)
        from repro.obs import follow_trace

        events = list(
            follow_trace(
                str(path),
                poll_seconds=0.01,
                stop_when=lambda event: event["event"] == "tick",
            )
        )
        assert events[-1]["event"] == "tick"
        assert len(events) == 2  # run_start + first tick


class TestSummaryToDict:
    def test_summary_to_dict_flattens_metrics(self):
        with recording(run_id="dictify") as recorder:
            recorder.event("demo", "tick", step=0)
            with span("demo", "work"):
                pass
            recorder.count("demo", "hits", 3)
            recorder.gauge("demo", "queue", 2)
            recorder.observe_quantile("demo", "latency_ns", 10)
        from repro.obs import summary_to_dict

        summary = summarize_trace(recorder.memory.events)
        data = summary_to_dict(summary)
        assert data["run_ids"] == ["dictify"]
        assert data["counters"]["demo/hits"] == 3
        assert data["gauges"]["demo/queue"]["value"] == 2.0
        assert data["quantiles"]["demo/latency_ns"]["count"] == 1
        assert data["events_by_kind"]["demo/tick"] == 1
        span_row = data["spans"]["demo/work"]
        assert span_row["count"] == 1
        assert "p99_ns" in span_row
        import json as json_module

        json_module.dumps(data)  # JSON-serializable throughout

    def test_span_stats_report_p99(self):
        with recording(run_id="p99") as recorder:
            for duration in range(100):
                recorder.record_span("demo", "op", duration)
        summary = summarize_trace(recorder.memory.events)
        stats = summary.spans[("demo", "op")]
        assert stats.p99_ns >= stats.p95_ns >= stats.p50_ns
        report = render_summary(summary)
        assert "p99" in report
