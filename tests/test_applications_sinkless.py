"""Unit tests for the sinkless-orientation application."""

import pytest

from repro.errors import CriterionViolationError, ReproError
from repro.applications import (
    is_sinkless,
    orientation_from_assignment,
    relaxed_sinkless_instance,
    sinkless_orientation_instance,
    sinks_of_orientation,
)
from repro.baselines import sequential_moser_tardos
from repro.core import solve
from repro.generators import cycle_graph, random_regular_graph, torus_graph
from repro.lll import check_preconditions, verify_solution


class TestInstanceConstruction:
    def test_probability_is_exactly_threshold(self):
        graph = random_regular_graph(12, 3, seed=0)
        instance = sinkless_orientation_instance(graph)
        assert instance.max_event_probability == pytest.approx(2.0**-3)
        assert instance.max_dependency_degree == 3
        assert instance.rank == 2

    def test_dependency_graph_equals_input_graph(self):
        graph = cycle_graph(8)
        instance = sinkless_orientation_instance(graph)
        dependency = instance.dependency_graph
        assert set(dependency.edges()) == {
            (min(u, v), max(u, v)) for u, v in graph.edges()
        } or set(map(frozenset, dependency.edges())) == set(
            map(frozenset, graph.edges())
        )

    def test_rejected_by_deterministic_fixer(self):
        graph = random_regular_graph(12, 3, seed=1)
        instance = sinkless_orientation_instance(graph)
        with pytest.raises(CriterionViolationError):
            solve(instance)

    def test_isolated_node_rejected(self):
        import networkx as nx

        graph = nx.Graph()
        graph.add_edge(0, 1)
        graph.add_node(2)
        with pytest.raises(ReproError):
            sinkless_orientation_instance(graph)


class TestDomainRoundTrip:
    def test_solved_by_moser_tardos_and_sinkless(self):
        graph = random_regular_graph(12, 3, seed=2)
        instance = sinkless_orientation_instance(graph)
        result = sequential_moser_tardos(instance, seed=3)
        orientation = orientation_from_assignment(graph, result.assignment)
        assert is_sinkless(graph, orientation)

    def test_sinks_detected(self):
        graph = cycle_graph(4)
        # Point every edge at node 0's side deterministically.
        orientation = {
            (0, 1): 0,
            (1, 2): 1,
            (2, 3): 2,
            (0, 3): 0,
        }
        sinks = sinks_of_orientation(graph, orientation)
        assert 0 in sinks

    def test_event_occurs_iff_sink(self):
        graph = cycle_graph(5)
        instance = sinkless_orientation_instance(graph)
        result = sequential_moser_tardos(instance, seed=4)
        orientation = orientation_from_assignment(graph, result.assignment)
        assert sinks_of_orientation(graph, orientation) == ()


class TestRelaxedVariant:
    def test_below_threshold_and_solvable(self):
        graph = random_regular_graph(12, 3, seed=5)
        instance = relaxed_sinkless_instance(graph, labels=3)
        report = check_preconditions(instance)
        assert report.p < report.threshold
        result = solve(instance)
        assert verify_solution(instance, result.assignment).ok

    def test_labels_validation(self):
        graph = cycle_graph(6)
        with pytest.raises(ReproError):
            relaxed_sinkless_instance(graph, labels=2)

    def test_probability_formula(self):
        graph = torus_graph(3, 3)  # 4-regular
        instance = relaxed_sinkless_instance(graph, labels=3)
        assert instance.max_event_probability == pytest.approx(3.0**-4)
