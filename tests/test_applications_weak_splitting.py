"""Unit tests for the relaxed weak-splitting application."""

import networkx as nx
import pytest

from repro.errors import ReproError
from repro.applications import (
    coloring_from_assignment,
    random_splitting_workload,
    weak_splitting_instance,
)
from repro.applications.weak_splitting import (
    colors_seen,
    satisfies_requirement,
)
from repro.core import solve, solve_distributed
from repro.lll import check_preconditions, verify_solution


def _workload(seed=0):
    return random_splitting_workload(num_v=10, num_u=15, v_degree=3, seed=seed)


class TestInstanceConstruction:
    def test_rank_at_most_three(self):
        bipartite, v_nodes, _u_nodes = _workload()
        instance = weak_splitting_instance(bipartite, v_nodes)
        assert instance.rank <= 3

    def test_probability_formula(self):
        bipartite, v_nodes, _u_nodes = _workload()
        instance = weak_splitting_instance(bipartite, v_nodes)
        # All V-degrees are 3: Pr[all same color] = 16^-2.
        assert instance.max_event_probability == pytest.approx(16.0**-2)

    def test_below_threshold(self):
        bipartite, v_nodes, _u_nodes = _workload()
        instance = weak_splitting_instance(bipartite, v_nodes)
        report = check_preconditions(instance, max_rank=3)
        assert report.p < report.threshold

    def test_u_degree_above_three_rejected(self):
        graph = nx.Graph()
        for v in range(4):
            graph.add_edge(v, "u")
        with pytest.raises(ReproError):
            weak_splitting_instance(graph, [0, 1, 2, 3])

    def test_non_bipartite_edge_rejected(self):
        graph = nx.Graph()
        graph.add_edge(0, 1)  # V-V edge
        graph.add_edge(0, "u")
        with pytest.raises(ReproError):
            weak_splitting_instance(graph, [0, 1])

    def test_isolated_v_node_rejected(self):
        graph = nx.Graph()
        graph.add_edge(0, "u")
        graph.add_node(1)
        with pytest.raises(ReproError):
            weak_splitting_instance(graph, [0, 1])


class TestSolving:
    def test_deterministic_fixer_solves(self):
        bipartite, v_nodes, u_nodes = _workload(seed=1)
        instance = weak_splitting_instance(bipartite, v_nodes)
        result = solve(instance)
        assert verify_solution(instance, result.assignment).ok
        coloring = coloring_from_assignment(u_nodes, result.assignment)
        assert satisfies_requirement(bipartite, v_nodes, coloring)

    def test_distributed_solves(self):
        bipartite, v_nodes, u_nodes = _workload(seed=2)
        instance = weak_splitting_instance(bipartite, v_nodes)
        result = solve_distributed(instance)
        coloring = coloring_from_assignment(u_nodes, result.assignment)
        assert satisfies_requirement(bipartite, v_nodes, coloring)

    def test_smaller_palette_still_works(self):
        # Even 9 colors suffice for degree-3 V-nodes: p = 9^-2 < 2^-6
        # (8 colors would sit exactly at the threshold: 8^-2 = 2^-6).
        bipartite, v_nodes, u_nodes = _workload(seed=3)
        instance = weak_splitting_instance(bipartite, v_nodes, num_colors=9)
        result = solve(instance)
        coloring = coloring_from_assignment(u_nodes, result.assignment)
        assert satisfies_requirement(bipartite, v_nodes, coloring)


class TestDomainChecks:
    def test_colors_seen(self):
        graph = nx.Graph()
        graph.add_edges_from([(0, "a"), (0, "b"), (0, "c")])
        coloring = {"a": 1, "b": 1, "c": 2}
        assert colors_seen(graph, 0, coloring) == 2

    def test_requirement_violated_by_monochromatic(self):
        graph = nx.Graph()
        graph.add_edges_from([(0, "a"), (0, "b")])
        assert not satisfies_requirement(graph, [0], {"a": 3, "b": 3})


class TestWorkloadGenerator:
    def test_degrees_respected(self):
        bipartite, v_nodes, u_nodes = _workload(seed=4)
        for v in v_nodes:
            assert bipartite.degree(v) == 3
        for u in u_nodes:
            assert 1 <= bipartite.degree(u) <= 3

    def test_capacity_validation(self):
        with pytest.raises(ReproError):
            random_splitting_workload(num_v=10, num_u=2, v_degree=3, seed=0)
