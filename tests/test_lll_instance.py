"""Unit tests for repro.lll.instance."""

import math

import pytest

from repro.errors import ReproError, UnknownVariableError
from repro.lll import LLLInstance
from repro.probability import BadEvent, DiscreteVariable, PartialAssignment


def _coin(name):
    return DiscreteVariable.fair_coin(name)


@pytest.fixture
def triangle_instance():
    """Three events in a triangle: each pair shares one coin."""
    xy = _coin("xy")
    yz = _coin("yz")
    zx = _coin("zx")
    events = [
        BadEvent.all_equal("X", [xy, zx], target=1),
        BadEvent.all_equal("Y", [xy, yz], target=1),
        BadEvent.all_equal("Z", [yz, zx], target=1),
    ]
    return LLLInstance(events)


class TestConstruction:
    def test_requires_events(self):
        with pytest.raises(ReproError):
            LLLInstance([])

    def test_duplicate_event_names_rejected(self):
        coin = _coin("c")
        events = [
            BadEvent.all_equal("E", [coin], target=1),
            BadEvent.all_equal("E", [coin], target=0),
        ]
        with pytest.raises(ReproError):
            LLLInstance(events)

    def test_conflicting_variable_declarations_rejected(self):
        first = DiscreteVariable("c", (0, 1))
        second = DiscreteVariable("c", (0, 1), (0.2, 0.8))
        events = [
            BadEvent.all_equal("A", [first], target=1),
            BadEvent.all_equal("B", [second], target=1),
        ]
        with pytest.raises(ReproError):
            LLLInstance(events)

    def test_shared_variables_deduplicated(self, triangle_instance):
        assert triangle_instance.num_variables == 3
        assert triangle_instance.num_events == 3


class TestDerivedStructures:
    def test_dependency_graph_is_triangle(self, triangle_instance):
        graph = triangle_instance.dependency_graph
        assert set(graph.nodes()) == {"X", "Y", "Z"}
        assert graph.number_of_edges() == 3

    def test_variable_hypergraph(self, triangle_instance):
        hypergraph = triangle_instance.variable_hypergraph
        assert hypergraph.num_edges == 3
        assert hypergraph.edge("xy").nodes == frozenset({"X", "Y"})

    def test_rank(self, triangle_instance):
        assert triangle_instance.rank == 2

    def test_max_dependency_degree(self, triangle_instance):
        assert triangle_instance.max_dependency_degree == 2

    def test_events_of_variable(self, triangle_instance):
        names = {e.name for e in triangle_instance.events_of_variable("xy")}
        assert names == {"X", "Y"}
        with pytest.raises(UnknownVariableError):
            triangle_instance.events_of_variable("nope")

    def test_isolated_events_have_degree_zero(self):
        a = BadEvent.all_equal("A", [_coin("u")], target=1)
        b = BadEvent.all_equal("B", [_coin("v")], target=1)
        instance = LLLInstance([a, b])
        assert instance.max_dependency_degree == 0
        assert instance.rank == 1


class TestParameters:
    def test_max_event_probability(self, triangle_instance):
        assert triangle_instance.max_event_probability == pytest.approx(0.25)

    def test_event_probabilities(self, triangle_instance):
        probabilities = triangle_instance.event_probabilities()
        assert set(probabilities) == {"X", "Y", "Z"}
        assert all(p == pytest.approx(0.25) for p in probabilities.values())

    def test_summary_fields(self, triangle_instance):
        summary = triangle_instance.summary()
        assert summary["num_events"] == 3
        assert summary["rank"] == 2
        assert summary["d"] == 2
        assert summary["exponential_criterion"] == (0.25 * 4 < 1)


class TestVerification:
    def test_occurring_events(self, triangle_instance):
        assignment = PartialAssignment()
        for variable in triangle_instance.variables:
            assignment.fix(variable, 1)
        occurring = triangle_instance.occurring_events(assignment)
        assert {event.name for event in occurring} == {"X", "Y", "Z"}

    def test_avoiding_assignment(self, triangle_instance):
        assignment = PartialAssignment()
        for variable in triangle_instance.variables:
            assignment.fix(variable, 0)
        assert triangle_instance.avoids_all_events(assignment)

    def test_is_complete(self, triangle_instance):
        assignment = PartialAssignment()
        assert not triangle_instance.is_complete(assignment)
        for variable in triangle_instance.variables:
            assignment.fix(variable, 0)
        assert triangle_instance.is_complete(assignment)

    def test_clear_caches(self, triangle_instance):
        triangle_instance.max_event_probability
        triangle_instance.clear_caches()
        assert all(e.cache_size == 0 for e in triangle_instance.events)

    def test_lookup_helpers(self, triangle_instance):
        assert triangle_instance.event("X").name == "X"
        assert triangle_instance.variable("xy").name == "xy"
        with pytest.raises(ReproError):
            triangle_instance.event("missing")
