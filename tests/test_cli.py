"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_solve_defaults(self):
        args = build_parser().parse_args(["solve"])
        assert args.family == "cycle"
        assert args.n == 24
        assert not args.distributed

    def test_unknown_family_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["solve", "--family", "nope"])


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "PODC 2019" in out
        assert "solve_rank3" in out

    def test_logstar(self, capsys):
        assert main(["logstar", "65536"]) == 0
        assert capsys.readouterr().out.strip() == "4"

    def test_solve_sequential(self, capsys):
        assert main(["solve", "--family", "cycle", "--n", "12"]) == 0
        out = capsys.readouterr().out
        assert "all bad events avoided" in out

    def test_solve_distributed(self, capsys):
        assert (
            main(
                [
                    "solve",
                    "--family",
                    "triples",
                    "--n",
                    "9",
                    "--alphabet",
                    "5",
                    "--distributed",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "LOCAL rounds" in out

    def test_solve_protocol(self, capsys):
        assert (
            main(
                [
                    "solve",
                    "--family",
                    "regular",
                    "--n",
                    "12",
                    "--degree",
                    "3",
                    "--protocol",
                ]
            )
            == 0
        )
        assert "LOCAL rounds" in capsys.readouterr().out

    def test_solve_rejects_at_threshold(self, capsys):
        code = main(
            ["solve", "--family", "cycle", "--n", "12", "--alphabet", "2"]
        )
        assert code == 1
        assert "REJECTED" in capsys.readouterr().out

    def test_threshold_demo(self, capsys):
        assert main(["threshold", "--n", "12"]) == 0
        out = capsys.readouterr().out
        assert "AT the threshold" in out
        assert "BELOW the threshold" in out

    def test_torus_family(self, capsys):
        assert main(["solve", "--family", "torus", "--n", "16"]) == 0
        assert "all bad events avoided" in capsys.readouterr().out

    def test_surface_ascii(self, capsys):
        assert main(["surface", "--width", "20", "--height", "8"]) == 0
        out = capsys.readouterr().out
        assert "@" in out
        assert "apex" in out

    def test_surface_csv(self, tmp_path, capsys):
        path = str(tmp_path / "surface.csv")
        assert main(["surface", "--csv", path, "--resolution", "6"]) == 0
        assert "wrote" in capsys.readouterr().out
        import csv

        with open(path, newline="") as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["a", "b", "f"]

    def test_report_command(self, benchmark_results_dir, capsys):
        code = main(["report", "--results-dir", benchmark_results_dir,
                     "--experiments", "T5"])
        assert code == 0
        assert "phase shift" in capsys.readouterr().out

    def test_info_landscape(self, capsys):
        assert main(["info", "--landscape"]) == 0
        assert "landscape" in capsys.readouterr().out


class TestObservabilityCommands:
    def build_trace(self, tmp_path, with_profile=False):
        from repro.obs import profiled, recording

        path = str(tmp_path / "trace.jsonl")
        with recording(path=path, run_id="cli-test") as recorder:
            recorder.event("demo", "tick", step=0)
            recorder.gauge("demo", "queue", 4)
            recorder.observe_quantile("demo", "latency_ns", 100)
            recorder.count("demo", "hits", 2)
            recorder.snapshot()
            if with_profile:
                with profiled(recorder, "demo", "cprofile", name="hot"):
                    sum(range(10_000))
        return path

    def test_stats_json(self, tmp_path, capsys):
        import json

        path = self.build_trace(tmp_path)
        assert main(["stats", path, "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["run_ids"] == ["cli-test"]
        assert data["counters"]["demo/hits"] == 2
        assert data["gauges"]["demo/queue"]["value"] == 4.0
        assert data["quantiles"]["demo/latency_ns"]["count"] == 1

    def test_stats_follow_prints_snapshots(self, tmp_path, capsys):
        path = self.build_trace(tmp_path)
        # The trace is complete (run_start/run_end balanced), so the
        # follow loop drains it and exits without waiting.
        assert main(["stats", path, "--follow", "--idle-timeout", "2"]) == 0
        out = capsys.readouterr().out
        assert "snapshot @" in out
        assert "demo/hits=2" in out
        assert "spans" in out or "counters" in out

    def test_profile_reports_collapsed_stacks(self, tmp_path, capsys):
        path = self.build_trace(tmp_path, with_profile=True)
        assert main(["profile", path]) == 0
        report = capsys.readouterr().out
        assert "hottest frames" in report

    def test_profile_writes_folded_file(self, tmp_path, capsys):
        path = self.build_trace(tmp_path, with_profile=True)
        out = str(tmp_path / "stacks.folded")
        assert main(["profile", path, "--out", out]) == 0
        assert "wrote" in capsys.readouterr().out
        lines = open(out).read().strip().splitlines()
        assert lines
        for line in lines:
            stack, _, weight = line.rpartition(" ")
            assert stack and int(weight) > 0

    def test_profile_without_profile_events(self, tmp_path, capsys):
        path = self.build_trace(tmp_path)
        assert main(["profile", path]) == 0
        assert "REPRO_PROFILE" in capsys.readouterr().out


class TestBenchCompare:
    def write_results(self, directory, rows):
        import json

        directory.mkdir(parents=True, exist_ok=True)
        (directory / "E5.json").write_text(json.dumps(rows))

    def test_green_gate_exits_zero(self, tmp_path, capsys):
        rows = [{"experiment": "E5", "mode": "on", "events": 3,
                 "trace_ok": True}]
        self.write_results(tmp_path / "baseline", rows)
        self.write_results(tmp_path / "candidate", rows)
        code = main([
            "bench", "compare",
            "--results-dir", str(tmp_path / "candidate"),
            "--baseline-dir", str(tmp_path / "baseline"),
        ])
        assert code == 0
        assert "PASS" in capsys.readouterr().out

    def test_regression_exits_three(self, tmp_path, capsys):
        self.write_results(
            tmp_path / "baseline",
            [{"experiment": "E5", "mode": "on", "events": 3,
              "trace_ok": True}],
        )
        self.write_results(
            tmp_path / "candidate",
            [{"experiment": "E5", "mode": "on", "events": 3,
              "trace_ok": False}],
        )
        code = main([
            "bench", "compare",
            "--results-dir", str(tmp_path / "candidate"),
            "--baseline-dir", str(tmp_path / "baseline"),
            "--verbose",
        ])
        assert code == 3
        out = capsys.readouterr().out
        assert "FAIL" in out
        assert "trace_ok" in out

    def test_missing_baseline_dir_is_an_error(self, tmp_path, capsys):
        (tmp_path / "candidate").mkdir()
        code = main([
            "bench", "compare",
            "--results-dir", str(tmp_path / "candidate"),
            "--baseline-dir", str(tmp_path / "absent"),
        ])
        assert code == 1
        assert "error:" in capsys.readouterr().err
