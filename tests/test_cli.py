"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_solve_defaults(self):
        args = build_parser().parse_args(["solve"])
        assert args.family == "cycle"
        assert args.n == 24
        assert not args.distributed

    def test_unknown_family_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["solve", "--family", "nope"])


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "PODC 2019" in out
        assert "solve_rank3" in out

    def test_logstar(self, capsys):
        assert main(["logstar", "65536"]) == 0
        assert capsys.readouterr().out.strip() == "4"

    def test_solve_sequential(self, capsys):
        assert main(["solve", "--family", "cycle", "--n", "12"]) == 0
        out = capsys.readouterr().out
        assert "all bad events avoided" in out

    def test_solve_distributed(self, capsys):
        assert (
            main(
                [
                    "solve",
                    "--family",
                    "triples",
                    "--n",
                    "9",
                    "--alphabet",
                    "5",
                    "--distributed",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "LOCAL rounds" in out

    def test_solve_protocol(self, capsys):
        assert (
            main(
                [
                    "solve",
                    "--family",
                    "regular",
                    "--n",
                    "12",
                    "--degree",
                    "3",
                    "--protocol",
                ]
            )
            == 0
        )
        assert "LOCAL rounds" in capsys.readouterr().out

    def test_solve_rejects_at_threshold(self, capsys):
        code = main(
            ["solve", "--family", "cycle", "--n", "12", "--alphabet", "2"]
        )
        assert code == 1
        assert "REJECTED" in capsys.readouterr().out

    def test_threshold_demo(self, capsys):
        assert main(["threshold", "--n", "12"]) == 0
        out = capsys.readouterr().out
        assert "AT the threshold" in out
        assert "BELOW the threshold" in out

    def test_torus_family(self, capsys):
        assert main(["solve", "--family", "torus", "--n", "16"]) == 0
        assert "all bad events avoided" in capsys.readouterr().out

    def test_surface_ascii(self, capsys):
        assert main(["surface", "--width", "20", "--height", "8"]) == 0
        out = capsys.readouterr().out
        assert "@" in out
        assert "apex" in out

    def test_surface_csv(self, tmp_path, capsys):
        path = str(tmp_path / "surface.csv")
        assert main(["surface", "--csv", path, "--resolution", "6"]) == 0
        assert "wrote" in capsys.readouterr().out
        import csv

        with open(path, newline="") as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["a", "b", "f"]

    def test_report_command(self, benchmark_results_dir, capsys):
        code = main(["report", "--results-dir", benchmark_results_dir,
                     "--experiments", "T5"])
        assert code == 0
        assert "phase shift" in capsys.readouterr().out

    def test_info_landscape(self, capsys):
        assert main(["info", "--landscape"]) == 0
        assert "landscape" in capsys.readouterr().out
