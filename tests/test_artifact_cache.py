"""Differential guarantee of the structural-fingerprint artifact cache.

``REPRO_ARTIFACTS=off`` is the oracle: every per-object cache keeps its
exact legacy behaviour and nothing is shared across objects.  With the
plane ``on``, kernels, kernel stacks, templates, index maps, plans and
memoized decisions are reused across instances of the same *shape* —
and every transcript (final assignment, step records, certified phi
ledger) must stay bit-identical to the oracle's, cold store or warm.

Coverage axes mirror ``test_decide_vector``: three fixer disciplines ×
three scheduler backends, plus the cross-instance warm path (a second
same-shape instance must *hit* the store, not just tolerate it), LRU
semantics of the shared cache primitive, the section-memo over-limit
regression (inserts used to stop silently at ``MEMO_LIMIT``), and an
ambient fault schedule on the process backend (recovery must not
corrupt or double-populate the store).
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.artifacts import (
    LRUCache,
    STORE,
    artifacts_enabled,
    artifacts_mode,
    instance_fingerprint,
    set_artifacts_mode,
    using_artifacts,
)
from repro.artifacts.store import ArtifactStore
from repro.core.naive_rankr import NaiveRankRFixer
from repro.core.rank2 import Rank2Fixer
from repro.core.rank3 import Rank3Fixer
from repro.errors import ReproError
from repro.generators import (
    all_zero_edge_instance,
    all_zero_triple_instance,
    cycle_graph,
    cyclic_triples,
    parity_edge_instance,
    random_regular_graph,
)
from repro.probability import reset_engine_stats
from repro.probability.engine import STATS
from repro.runtime import make_scheduler, plan_for_instance

SLOW_SETTINGS = settings(
    deadline=None,
    max_examples=6,
    suppress_health_check=[HealthCheck.too_slow],
)

SCHEDULERS = ("serial", "batch", "process")


# ----------------------------------------------------------------------
# Strategies and the differential harness
# ----------------------------------------------------------------------
def rank2_specs():
    cycles = st.tuples(
        st.integers(min_value=3, max_value=14),
        st.integers(min_value=3, max_value=5),
    ).map(lambda t: ("cycle", t[0], t[1], 0))
    regulars = st.tuples(
        st.integers(min_value=4, max_value=7).map(lambda k: 2 * k),
        st.integers(min_value=5, max_value=6),
        st.integers(min_value=0, max_value=3),
    ).map(lambda t: ("regular", t[0], t[1], t[2]))
    return st.one_of(cycles, regulars)


def rank3_specs():
    return st.tuples(
        st.integers(min_value=5, max_value=16),
        st.integers(min_value=5, max_value=6),
    ).map(lambda t: ("triples", t[0], t[1], 0))


def build_instance(spec):
    family, n, alphabet, seed = spec
    if family == "cycle":
        return all_zero_edge_instance(cycle_graph(n), alphabet)
    if family == "regular":
        return all_zero_edge_instance(
            random_regular_graph(n, 3, seed=seed), alphabet
        )
    return all_zero_triple_instance(n, cyclic_triples(n), alphabet)


def make_fixer(kind, instance):
    if kind == "rank2":
        return Rank2Fixer(instance)
    if kind == "rank3":
        return Rank3Fixer(instance)
    return NaiveRankRFixer(instance)


def bounds_of(fixer):
    if hasattr(fixer, "certified_bounds"):
        return fixer.certified_bounds()
    return fixer.pstar.certified_bounds()


def transcript(spec, kind, scheduler_name, **scheduler_kwargs):
    """One full run under the ambient artifacts mode.

    A *fresh* instance every call: with the plane on, any reuse is by
    structural fingerprint across distinct objects — exactly the
    property under test.
    """
    instance = build_instance(spec)
    plan = plan_for_instance(instance)
    fixer = make_fixer(kind, instance)
    scheduler = make_scheduler(scheduler_name, **scheduler_kwargs)
    scheduler.execute(fixer, plan, instance)
    values = {
        variable.name: fixer.assignment.value_of(variable.name)
        for variable in instance.variables
    }
    return values, fixer.steps, bounds_of(fixer)


def assert_identical(reference, candidate, label):
    assert candidate[0] == reference[0], f"{label}: assignments differ"
    assert candidate[1] == reference[1], f"{label}: step records differ"
    assert candidate[2] == reference[2], f"{label}: phi ledgers differ"


def run_differential(spec, kind, scheduler_name, **scheduler_kwargs):
    """off-oracle vs cold-store vs warm-store, all bit-identical."""
    with using_artifacts("off"):
        reference = transcript(spec, kind, scheduler_name,
                               **scheduler_kwargs)
    with using_artifacts("on"):
        STORE.clear()
        cold = transcript(spec, kind, scheduler_name, **scheduler_kwargs)
        warm = transcript(spec, kind, scheduler_name, **scheduler_kwargs)
    label = f"{kind}/{scheduler_name}"
    assert_identical(reference, cold, f"{label}/cold")
    assert_identical(reference, warm, f"{label}/warm")
    # The warm run solved a *different* instance object of the same
    # shape: it must have found its plan in the store.
    assert STORE.tier("plans").hits > 0, f"{label}: warm run never hit"


# ----------------------------------------------------------------------
# on vs off, across fixers and schedulers
# ----------------------------------------------------------------------
@SLOW_SETTINGS
@given(spec=rank2_specs())
def test_artifacts_identical_rank2(spec):
    for name in SCHEDULERS:
        run_differential(spec, "rank2", name)


@SLOW_SETTINGS
@given(spec=rank3_specs())
def test_artifacts_identical_rank3(spec):
    for name in SCHEDULERS:
        run_differential(spec, "rank3", name)


@SLOW_SETTINGS
@given(spec=rank3_specs())
def test_artifacts_identical_naive_rankr(spec):
    for name in SCHEDULERS:
        run_differential(spec, "naive", name)


# ----------------------------------------------------------------------
# Cross-instance reuse: the second same-shape instance hits every tier
# ----------------------------------------------------------------------
def test_second_same_shape_instance_reuses_artifacts():
    spec = ("cycle", 12, 3, 0)
    with using_artifacts("on"):
        STORE.clear()
        reset_engine_stats()
        first = transcript(spec, "rank2", "serial")
        compiles_cold = STATS.kernel_compiles
        assert compiles_cold > 0
        second = transcript(spec, "rank2", "serial")
        # The warm solve itself needs no kernels at all (probabilities
        # come from the parameters tier, the template carries its
        # stacks), but a fresh same-shape event that *does* ask for its
        # kernel gets the cold run's compile back from the store.
        reuses_warm = STATS.kernel_reuses
        probe = build_instance(spec)
        probe.events[0].probability()
    assert_identical(first, second, "same-shape")
    # Plan, template and event probabilities all came from the store:
    # no new compiles, real tier hits.
    assert STATS.kernel_compiles == compiles_cold
    assert STATS.kernel_reuses == reuses_warm + 1
    assert STORE.tier("kernels").hits >= 1
    assert STORE.tier("plans").hits == 1
    assert STORE.tier("templates").hits >= 1
    assert STORE.tier("parameters").hits >= 1
    # The plan hit short-circuits the coloring, so the indexing tier is
    # never even consulted on the warm path — populated once, cold.
    assert len(STORE.tier("indexings")) >= 1


def test_different_shape_instances_do_not_collide():
    with using_artifacts("on"):
        STORE.clear()
        a = transcript(("cycle", 12, 3, 0), "rank2", "serial")
        b = transcript(("cycle", 13, 3, 0), "rank2", "serial")
        b_again = transcript(("cycle", 13, 3, 0), "rank2", "serial")
    assert STORE.tier("plans").misses >= 2
    assert len(a[0]) != len(b[0])
    assert_identical(b, b_again, "reuse-after-mixing")


def test_unfingerprintable_instance_skips_every_tier():
    """Opaque-predicate events keep the exact legacy (per-object) path."""
    instance = parity_edge_instance(cycle_graph(8), 0.1)
    assert instance_fingerprint(instance) is None
    with using_artifacts("on"):
        STORE.clear()
        plan = plan_for_instance(instance)
        fixer = Rank2Fixer(instance)
        make_scheduler("serial").execute(fixer, plan, instance)
    # Every fingerprint-keyed tier skips the instance.  (The stacks
    # tier may legitimately hold entries: stacked truth tables are
    # keyed on kernel *content* fingerprints, which exist for any
    # compiled kernel, hints or not.)
    for tier_name in ("kernels", "plans", "templates", "indexings"):
        assert len(STORE.tier(tier_name)) == 0, tier_name
        assert STORE.tier(tier_name).hits == 0, tier_name


def test_fingerprints_separate_shapes():
    same_a = instance_fingerprint(all_zero_edge_instance(cycle_graph(9), 3))
    same_b = instance_fingerprint(all_zero_edge_instance(cycle_graph(9), 3))
    other_n = instance_fingerprint(all_zero_edge_instance(cycle_graph(10), 3))
    other_k = instance_fingerprint(all_zero_edge_instance(cycle_graph(9), 4))
    assert same_a == same_b
    assert len({same_a, other_n, other_k}) == 3


# ----------------------------------------------------------------------
# The shared cache primitive
# ----------------------------------------------------------------------
def test_lru_cache_evicts_least_recently_used():
    cache = LRUCache(2)
    cache.put("a", 1)
    cache.put("b", 2)
    assert cache.get("a") == 1  # refreshes "a"; "b" is now LRU
    assert cache.put("c", 3) == "b"
    assert cache.evictions == 1
    assert cache.get("b") is None
    assert cache.get("a") == 1
    assert cache.get("c") == 3
    assert len(cache) == 2


def test_lru_cache_over_limit_keeps_inserting():
    """Regression: inserts past capacity must evict, not stop."""
    cache = LRUCache(3)
    for i in range(10):
        cache[i] = i * i
    assert len(cache) == 3
    assert cache.evictions == 7
    # The *latest* entries survive — the old memo kept the earliest.
    assert cache.get(9) == 81
    assert cache.get(0) is None


def test_lru_cache_update_existing_key_is_not_an_eviction():
    cache = LRUCache(1)
    cache.put("a", 1)
    assert cache.put("a", 2) is None
    assert cache.evictions == 0
    assert cache.get("a") == 2


def test_lru_cache_zero_capacity_never_stores():
    cache = LRUCache(0)
    cache.put("a", 1)
    assert len(cache) == 0
    assert cache.get("a") is None


def test_store_off_mode_is_inert():
    with using_artifacts("off"):
        STORE.clear()
        STORE.put("plans", ("key",), "value")
        assert STORE.get("plans", ("key",)) is None
    totals = STORE.totals()
    assert totals == {"hits": 0, "misses": 0, "evictions": 0, "size": 0}


def test_store_none_key_is_inert():
    with using_artifacts("on"):
        STORE.clear()
        STORE.put("plans", None, "value")
        assert STORE.get("plans", None) is None
        assert STORE.totals()["size"] == 0
        assert STORE.totals()["misses"] == 0


def test_store_capacity_override():
    store = ArtifactStore(capacities={"plans": 1})
    with using_artifacts("on"):
        store.put("plans", "a", 1)
        store.put("plans", "b", 2)
        assert store.get("plans", "a") is None
        assert store.get("plans", "b") == 2
    assert store.tier("plans").evictions == 1


# ----------------------------------------------------------------------
# Section-memo over-limit regression (satellite: MEMO_LIMIT freeze)
# ----------------------------------------------------------------------
def test_section_memo_is_lru_and_survives_tiny_limit(monkeypatch):
    from repro.core import vector

    spec = ("triples", 12, 6, 0)
    with using_artifacts("off"):
        reference = transcript(spec, "rank3", "serial")
    monkeypatch.setattr(vector, "MEMO_LIMIT", 1)
    with using_artifacts("on"):
        STORE.clear()
        cold = transcript(spec, "rank3", "serial")
        warm = transcript(spec, "rank3", "serial")
    assert_identical(reference, cold, "memo-limit/cold")
    assert_identical(reference, warm, "memo-limit/warm")
    # The lowered template's sections carry LRU memos bounded by the
    # patched limit.
    memos = [
        section.memo
        for template in STORE.tier("templates").data.values()
        for _cells, section in template.sections.values()
    ]
    assert memos, "no lowered sections were cached"
    for memo in memos:
        assert isinstance(memo, LRUCache)
        assert len(memo) <= 1


def test_section_memo_over_limit_path_evicts():
    """Pushing a real section memo past capacity evicts the oldest
    batch instead of refusing the insert — the old code froze the first
    ``MEMO_LIMIT`` signatures forever."""
    from repro.core import vector

    spec = ("triples", 12, 6, 0)
    with using_artifacts("on"):
        STORE.clear()
        transcript(spec, "rank3", "serial")
        memos = [
            section.memo
            for template in STORE.tier("templates").data.values()
            for _cells, section in template.sections.values()
        ]
    assert memos
    memo = memos[0]
    memo.capacity = 2
    overflow = [("synthetic", i) for i in range(4)]
    for key in overflow:
        memo.put(key, "batch")
    # Four inserts into a 2-slot memo: the old code would have kept the
    # first two forever; LRU keeps the newest two.
    assert memo.evictions >= 2
    assert len(memo) == 2
    assert memo.get(overflow[-1]) == "batch"
    assert memo.get(overflow[-2]) == "batch"
    assert memo.get(overflow[0]) is None


# ----------------------------------------------------------------------
# Fault recovery must not corrupt or double-populate the store
# ----------------------------------------------------------------------
def test_artifacts_identical_under_ambient_fault_schedule(monkeypatch):
    spec = ("triples", 14, 6, 0)
    with using_artifacts("off"):
        reference = transcript(spec, "rank3", "serial")
    monkeypatch.setenv("REPRO_FAULTS", "seed=3,crash=0.5,deadline=15")
    with using_artifacts("on"):
        STORE.clear()
        cold = transcript(spec, "rank3", "process",
                          max_workers=2, backoff_base=0.0)
        warm = transcript(spec, "rank3", "process",
                          max_workers=2, backoff_base=0.0)
    assert_identical(reference, cold, "faults/cold")
    assert_identical(reference, warm, "faults/warm")
    # Retried chunks re-derive nothing in the parent: one shape means
    # one plan and at most one indexing entry per kind — recovery never
    # double-populates.  (Templates lower inside the worker processes'
    # own stores, so the parent tier stays empty on this backend.)
    assert len(STORE.tier("plans")) == 1
    assert len(STORE.tier("indexings")) <= 2
    assert len(STORE.tier("templates")) <= 1


# ----------------------------------------------------------------------
# Mode plumbing and CLI
# ----------------------------------------------------------------------
def test_artifacts_mode_plumbing():
    previous = artifacts_mode()
    try:
        assert set_artifacts_mode("off") == previous
        assert artifacts_mode() == "off"
        assert not artifacts_enabled()
        with using_artifacts("on"):
            assert artifacts_enabled()
        assert artifacts_mode() == "off"
        with pytest.raises(ReproError):
            set_artifacts_mode("maybe")
    finally:
        set_artifacts_mode(previous)


def test_capacity_env_parse_rejects_garbage(monkeypatch):
    from repro.artifacts.store import CAPACITY_ENV

    monkeypatch.setenv(CAPACITY_ENV, "plans=banana")
    store = ArtifactStore()
    with pytest.raises(ReproError):
        store.tier("plans")


def test_capacity_env_override(monkeypatch):
    from repro.artifacts.store import CAPACITY_ENV

    monkeypatch.setenv(CAPACITY_ENV, "plans=7, kernels=9")
    store = ArtifactStore()
    assert store.tier("plans").capacity == 7
    assert store.tier("kernels").capacity == 9
    assert store.tier("templates").capacity == 128


def test_scheduler_publishes_artifact_stats():
    from repro.obs import recording

    spec = ("cycle", 10, 3, 0)
    with using_artifacts("on"):
        STORE.clear()
        with recording(run_id="artifact-stats") as recorder:
            transcript(spec, "rank2", "serial")
            transcript(spec, "rank2", "serial")
    counters = recorder.counters
    assert counters.get(("artifacts", "plans_misses")) == 1
    assert counters.get(("artifacts", "plans_hits")) == 1
    assert counters.get(("artifacts", "parameters_hits"), 0) > 0
    assert counters.get(("engine", "kernel_compiles"), 0) > 0


def test_cli_cache_stats_and_clear(capsys):
    from repro.cli import main

    with using_artifacts("on"):
        STORE.clear()
        transcript(("cycle", 10, 3, 0), "rank2", "serial")
        assert main(["cache", "stats"]) == 0
        out = capsys.readouterr().out
        assert "mode=on" in out
        assert "plans" in out
        assert main(["cache", "clear"]) == 0
        out = capsys.readouterr().out
        assert "cleared" in out
        assert STORE.totals()["size"] == 0


def test_cli_solve_artifacts_flag(capsys):
    from repro.cli import main

    previous = artifacts_mode()
    try:
        code = main([
            "solve", "--family", "cycle", "--n", "10", "--alphabet", "3",
            "--distributed", "--artifacts", "off",
        ])
        assert code == 0
        assert artifacts_mode() == "off"
    finally:
        set_artifacts_mode(previous)
    assert "solved" in capsys.readouterr().out
