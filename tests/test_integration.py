"""Integration tests spanning generators, fixers, baselines and verification.

These check the *system-level* claims of the reproduction: that the
deterministic fixers agree with an exhaustive oracle, that sequential and
distributed executions produce valid solutions on the same workloads, and
that the threshold separates the algorithms exactly as the paper says.
"""

import random

import pytest

from repro.applications import (
    hypergraph_sinkless_instance,
    orientations_from_assignment,
    sinkless_orientation_instance,
)
from repro.applications.hypergraph_sinkless import satisfies_requirement
from repro.baselines import (
    avoidance_probability,
    distributed_moser_tardos,
    exhaustive_search,
    sequential_moser_tardos,
)
from repro.core import (
    Rank3Fixer,
    max_pressure_chooser,
    run_with_adversary,
    solve,
    solve_distributed,
)
from repro.errors import CriterionViolationError
from repro.generators import (
    all_zero_edge_instance,
    all_zero_triple_instance,
    cycle_graph,
    cyclic_triples,
    random_regular_graph,
)
from repro.lll import verify_solution


class TestAgainstExhaustiveOracle:
    """On tiny instances, the fixer must find a solution whenever one
    exists — and the LLL guarantees one exists below the threshold."""

    def test_rank2_matches_oracle(self):
        instance = all_zero_edge_instance(cycle_graph(5), 3)
        oracle = exhaustive_search(instance)
        assert oracle is not None
        result = solve(instance)
        assert verify_solution(instance, result.assignment).ok

    def test_rank3_matches_oracle(self):
        instance = all_zero_triple_instance(6, cyclic_triples(6), 5)
        oracle = exhaustive_search(instance)
        assert oracle is not None
        result = solve(instance)
        assert verify_solution(instance, result.assignment).ok

    def test_avoidance_probability_positive_below_threshold(self):
        instance = all_zero_edge_instance(cycle_graph(6), 3)
        assert avoidance_probability(instance) > 0.0


class TestSequentialVsDistributed:
    def test_both_solve_same_rank2_workload(self):
        graph = random_regular_graph(18, 3, seed=0)
        sequential_instance = all_zero_edge_instance(graph, 3)
        distributed_instance = all_zero_edge_instance(graph, 3)
        seq = solve(sequential_instance)
        dist = solve_distributed(distributed_instance)
        assert verify_solution(sequential_instance, seq.assignment).ok
        assert verify_solution(distributed_instance, dist.assignment).ok

    def test_both_solve_same_rank3_workload(self):
        triples = cyclic_triples(12)
        seq_instance = all_zero_triple_instance(12, triples, 5)
        dist_instance = all_zero_triple_instance(12, triples, 5)
        seq = solve(seq_instance)
        dist = solve_distributed(dist_instance)
        assert verify_solution(seq_instance, seq.assignment).ok
        assert verify_solution(dist_instance, dist.assignment).ok

    def test_distributed_certifies_same_bound_shape(self):
        triples = cyclic_triples(12)
        instance = all_zero_triple_instance(12, triples, 5)
        result = solve_distributed(instance)
        assert result.fixing.max_certified_bound < 1.0


class TestThresholdSeparation:
    """The sharp threshold: deterministic below, randomized-only at it."""

    def test_below_threshold_deterministic_succeeds(self):
        graph = random_regular_graph(16, 3, seed=1)
        instance = all_zero_edge_instance(graph, 3)  # p = 27^-1 < 2^-3
        result = solve(instance)
        assert verify_solution(instance, result.assignment).ok

    def test_at_threshold_deterministic_rejects(self):
        graph = random_regular_graph(16, 3, seed=1)
        instance = sinkless_orientation_instance(graph)  # p = 2^-d
        with pytest.raises(CriterionViolationError):
            solve(instance)

    def test_at_threshold_randomized_still_works(self):
        graph = random_regular_graph(16, 3, seed=1)
        instance = sinkless_orientation_instance(graph)
        result = distributed_moser_tardos(instance, seed=2)
        assert verify_solution(instance, result.assignment).ok

    def test_solution_exists_at_threshold(self):
        # The lower bounds are about *time*, not existence: exhaustive
        # search still finds a sinkless orientation of a small cubic graph.
        graph = random_regular_graph(8, 3, seed=3)
        instance = sinkless_orientation_instance(graph)
        assert exhaustive_search(instance) is not None


class TestApplicationPipeline:
    def test_hypergraph_sinkless_full_pipeline(self):
        triples = cyclic_triples(15)
        instance = hypergraph_sinkless_instance(15, triples)
        result = solve_distributed(instance)
        orientations = orientations_from_assignment(
            triples, result.assignment
        )
        assert satisfies_requirement(15, triples, orientations)

    def test_adversarial_order_on_application(self):
        triples = cyclic_triples(12)
        instance = hypergraph_sinkless_instance(12, triples)
        fixer = Rank3Fixer(instance)
        result = run_with_adversary(fixer, max_pressure_chooser)
        orientations = orientations_from_assignment(
            triples, result.assignment
        )
        assert satisfies_requirement(12, triples, orientations)


class TestCrossAlgorithmConsistency:
    def test_all_solvers_agree_on_solvability(self):
        instance_factory = lambda: all_zero_edge_instance(
            cycle_graph(8), 3
        )
        fixer_result = solve(instance_factory())
        mt_result = sequential_moser_tardos(instance_factory(), seed=0)
        dmt_result = distributed_moser_tardos(instance_factory(), seed=0)
        for result, instance in (
            (fixer_result, instance_factory()),
            (mt_result, instance_factory()),
            (dmt_result, instance_factory()),
        ):
            assert verify_solution(instance, result.assignment).ok

    def test_caches_do_not_leak_between_runs(self):
        instance = all_zero_edge_instance(cycle_graph(8), 3)
        first = solve(instance)
        instance.clear_caches()
        # The instance is already fixed through `first`; build a fresh one
        # to rerun and compare certified bounds deterministically.
        fresh = all_zero_edge_instance(cycle_graph(8), 3)
        second = solve(fresh)
        assert first.certified_bounds == second.certified_bounds
