"""The persistent solve service (:mod:`repro.serve`).

Four promises under test, matching the serving contract
(docs/serving.md):

* **Differential bit-identity** — a served solve equals the in-process
  serial-scheduler transcript exactly (assignment, certified bounds,
  steps, slack), and a warm (memoized) response is byte-identical to
  the cold response it was cached from.  ``REPRO_ARTIFACTS=off``
  recomputes every request (the serving oracle) and still matches.
* **Typed overload behaviour** — admission rejections are 429s naming
  :class:`~repro.errors.AdmissionError`; expired deadlines are 504s
  naming :class:`~repro.errors.DeadlineExceededError`; neither poisons
  the scheduler pool for subsequent requests.
* **Drain** — SIGTERM finishes in-flight work, exits 0, and leaves no
  orphaned ``/dev/shm`` segments behind.
* **Telemetry** — request counters, latency quantiles and cache
  hit-rate surface through ``GET /v1/stats``.
"""

from __future__ import annotations

import asyncio
import glob
import json
import os
import signal
import subprocess
import sys
import threading

import pytest

from repro.artifacts.store import using_artifacts
from repro.core.sequential import solve
from repro.generators import build_family_instance
from repro.lll.io import _encode_name, instance_to_dict
from repro.runtime.schedulers import make_scheduler
from repro.serve import ServeClient, ServeConfig, SolveServer

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


# ----------------------------------------------------------------------
# Harness: one warm server per module, background event loop
# ----------------------------------------------------------------------

class ServerThread:
    """A :class:`SolveServer` on its own event loop thread."""

    def __init__(self, **config_kwargs) -> None:
        config_kwargs.setdefault("port", 0)
        self.config = ServeConfig(**config_kwargs)
        self._loop = asyncio.new_event_loop()
        self._started = threading.Event()
        self.server: SolveServer = None
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        if not self._started.wait(timeout=30):
            raise RuntimeError("server failed to start")

    def _run(self) -> None:
        asyncio.set_event_loop(self._loop)
        self.server = SolveServer(self.config)
        self._loop.run_until_complete(self.server.start())
        self._started.set()
        self._loop.run_forever()

    def client(self, timeout: float = 120.0) -> ServeClient:
        return ServeClient(self.config.host, self.server.port, timeout)

    def drain(self) -> None:
        future = asyncio.run_coroutine_threadsafe(
            self.server.drain(), self._loop
        )
        future.result(timeout=60)

    def stop(self) -> None:
        if not self.server._drained.is_set():
            self.drain()
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10)
        self._loop.close()


@pytest.fixture(scope="module")
def served():
    thread = ServerThread(workers=2)
    yield thread
    thread.stop()


def _reference_solve(family: str, n: int, alphabet: int):
    """The differential oracle: in-process solve on the serial plan."""
    instance = build_family_instance(family, n, alphabet=alphabet)
    scheduler = make_scheduler("serial")
    result = solve(instance, scheduler=scheduler)
    assignment = [
        [_encode_name(name), value]
        for name, value in result.assignment.items()
    ]
    assignment.sort(key=lambda pair: json.dumps(pair[0], sort_keys=True))
    bounds = [
        [_encode_name(name), value]
        for name, value in result.certified_bounds.items()
    ]
    bounds.sort(key=lambda pair: json.dumps(pair[0], sort_keys=True))
    return instance, result, assignment, bounds


# ----------------------------------------------------------------------
# Differential suite
# ----------------------------------------------------------------------

class TestServeDifferential:
    def test_served_solve_bit_identical_to_inprocess(self, served):
        instance, result, assignment, bounds = _reference_solve(
            "cycle", 48, 3
        )
        client = served.client()
        status, body = client.solve(
            {"family": "cycle", "n": 48, "alphabet": 3}
        )
        assert status == 200 and body["ok"]
        assert body["result"]["assignment"] == assignment
        assert body["result"]["certified_bounds"] == bounds
        assert body["result"]["steps"] == result.num_steps
        assert body["result"]["min_slack"] == result.min_slack
        assert (
            body["result"]["max_certified_bound"]
            == result.max_certified_bound
        )
        client.close()

    def test_instance_dict_requests_match_family_requests(self, served):
        instance = build_family_instance("triples", 24, alphabet=8)
        client = served.client()
        status, by_dict = client.solve(
            {"instance": instance_to_dict(instance)}
        )
        status2, by_family = client.solve(
            {"family": "triples", "n": 24, "alphabet": 8}
        )
        assert status == status2 == 200
        assert by_dict["result"] == by_family["result"]
        client.close()

    def test_warm_response_identical_to_cold_and_hit_rate(self, served):
        client = served.client()
        payload = {"family": "regular", "n": 36, "alphabet": 3, "seed": 5}
        client.request("POST", "/v1/cache/clear")
        _, cold = client.solve(payload)
        _, warm = client.solve(payload)
        assert cold["result"] == warm["result"]
        assert cold["ok"] and warm["ok"]
        # The warm request is pure reuse: every tier touch is a hit.
        assert warm["cache"]["hit_rate"] == 1.0
        assert warm["cache"]["misses"] == 0
        client.close()

    def test_artifacts_off_oracle_recomputes_and_matches(self, served):
        client = served.client()
        payload = {"family": "cycle", "n": 30, "alphabet": 3}
        _, cached = client.solve(payload)
        with using_artifacts("off"):
            # The server thread shares this process-wide switch: with
            # the plane off the solutions tier is inert, so the request
            # recomputes from scratch — and must match bit-identically.
            _, recomputed = client.solve(payload)
            assert recomputed["cache"]["hits"] == 0
        assert recomputed["result"] == cached["result"]
        client.close()

    def test_verify_roundtrip_and_tamper_detection(self, served):
        client = served.client()
        payload = {"family": "cycle", "n": 18, "alphabet": 3}
        _, solved = client.solve(payload)
        status, verified = client.request(
            "POST",
            "/v1/verify",
            {**payload, "assignment": solved["result"]["assignment"]},
        )
        assert status == 200 and verified["ok"]
        assert verified["result"]["complete"]
        assert verified["result"]["occurring"] == []
        # All-zero is exactly the assignment every bad event occurs on.
        tampered = [
            [name, 0] for name, _ in solved["result"]["assignment"]
        ]
        status, broken = client.request(
            "POST", "/v1/verify", {**payload, "assignment": tampered}
        )
        assert status == 200 and not broken["ok"]
        assert len(broken["result"]["occurring"]) == 18
        client.close()

    def test_plan_endpoint_matches_local_plan(self, served):
        from repro.runtime.plan import plan_for_instance

        instance = build_family_instance("cycle", 20, alphabet=3)
        plan = plan_for_instance(instance)
        client = served.client()
        status, body = client.request(
            "POST", "/v1/plan", {"family": "cycle", "n": 20, "alphabet": 3}
        )
        assert status == 200 and body["ok"]
        assert body["result"]["num_classes"] == plan.num_classes
        assert body["result"]["num_cells"] == plan.num_cells
        assert body["result"]["num_ops"] == plan.num_ops
        assert body["result"]["palette"] == plan.palette
        client.close()

    def test_include_flags_trim_the_response(self, served):
        client = served.client()
        _, body = client.solve(
            {
                "family": "cycle",
                "n": 12,
                "alphabet": 3,
                "include_assignment": False,
                "include_bounds": False,
            }
        )
        assert "assignment" not in body["result"]
        assert "certified_bounds" not in body["result"]
        assert body["result"]["verified"] is True
        assert body["result"]["steps"] >= 0
        client.close()


# ----------------------------------------------------------------------
# Typed overload behaviour
# ----------------------------------------------------------------------

class TestAdmissionAndDeadlines:
    def test_deadline_exceeded_is_typed_and_pool_survives(self, served):
        client = served.client()
        status, body = client.solve(
            {"family": "cycle", "n": 24, "alphabet": 3, "deadline_s": 0.0}
        )
        assert status == 504
        assert body["error"]["type"] == "DeadlineExceededError"
        # The pool is not poisoned: the very next request succeeds.
        status, body = client.solve(
            {"family": "cycle", "n": 24, "alphabet": 3}
        )
        assert status == 200 and body["ok"]
        client.close()

    def test_admission_limit_rejects_with_429(self):
        thread = ServerThread(scheduler="serial", max_inflight=0)
        try:
            client = thread.client()
            status, body = client.solve({"family": "cycle", "n": 8})
            assert status == 429
            assert body["error"]["type"] == "AdmissionError"
            status, stats = client.request("GET", "/v1/stats")
            assert stats["rejections"] == 1
            client.close()
        finally:
            thread.stop()

    def test_malformed_requests_are_400s(self, served):
        client = served.client()
        status, body = client.request(
            "POST", "/v1/solve", {"family": "klein-bottle", "n": 8}
        )
        assert status == 400 and not body["ok"]
        status, body = client.request("POST", "/v1/solve", {})
        assert status == 400
        assert "instance" in body["error"]["message"]
        status, body = client.request("POST", "/v1/nonsense", {})
        assert status == 404
        client.close()

    def test_stats_surface_latency_and_hit_rate(self, served):
        client = served.client()
        client.solve({"family": "cycle", "n": 10, "alphabet": 3})
        client.solve({"family": "cycle", "n": 10, "alphabet": 3})
        status, stats = client.request("GET", "/v1/stats")
        assert status == 200
        assert stats["requests"]["solve"] >= 2
        assert "p50_ms" in stats["latency"]
        assert "p99_ms" in stats["latency"]
        assert stats["cache"]["hit_rate"] is not None
        assert "solutions" in stats["cache"]["tiers"]
        client.close()


# ----------------------------------------------------------------------
# Drain under SIGTERM (real process, real signals, real /dev/shm)
# ----------------------------------------------------------------------

class TestDrain:
    def test_sigterm_drains_and_leaves_no_shm_orphans(self):
        env = dict(os.environ)
        src = os.path.join(REPO_ROOT, "src")
        env["PYTHONPATH"] = (
            src + os.pathsep + env["PYTHONPATH"]
            if env.get("PYTHONPATH")
            else src
        )
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--port", "0", "--workers", "2",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
            cwd=REPO_ROOT,
        )
        try:
            announce = process.stdout.readline()
            assert "listening on http://" in announce
            port = int(announce.split("http://", 1)[1]
                       .split()[0].rsplit(":", 1)[1])
            client = ServeClient("127.0.0.1", port, timeout=120)
            status, body = client.solve(
                {"family": "cycle", "n": 16, "alphabet": 3}
            )
            assert status == 200 and body["ok"]
            client.close()
            process.send_signal(signal.SIGTERM)
            output, _ = process.communicate(timeout=60)
        finally:
            if process.poll() is None:
                process.kill()
                process.communicate(timeout=10)
        assert process.returncode == 0, output
        assert "drained after" in output
        orphans = glob.glob(f"/dev/shm/repro_shm_{process.pid}_*")
        assert orphans == []

    def test_draining_server_rejects_new_work(self):
        thread = ServerThread(scheduler="serial")
        try:
            client = thread.client()
            status, body = client.solve({"family": "cycle", "n": 8})
            assert status == 200 and body["ok"]
            client.close()
            thread.drain()
            # The listening socket is closed during drain: new
            # connections must fail outright.
            with pytest.raises(ConnectionError):
                fresh = thread.client(timeout=5)
                fresh.request("GET", "/healthz")
        finally:
            thread.stop()
