"""Typed rejection of invalid ``REPRO_*`` environment configuration.

Every mode-selecting environment variable used to be validated with a
bare :class:`~repro.errors.ReproError` (or, before that, inconsistently
across modules).  The hardening sweep retyped them all to
:class:`~repro.errors.ConfigurationError` with a uniform message shape:
the variable's *name*, the rejected value, and the allowed values — so
an operator who fat-fingers ``REPRO_IPC=shram`` learns which knob to
fix without reading source.

These tests drive the parsers directly (monkeypatched environment, no
subprocess) and assert on the message contract, not just the type.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, ReproError


@pytest.mark.parametrize(
    "variable, parser, valid",
    [
        (
            "REPRO_ENGINE",
            lambda: __import__(
                "repro.probability.engine", fromlist=["_mode_from_env"]
            )._mode_from_env(),
            "compiled",
        ),
        (
            "REPRO_DECIDE",
            lambda: __import__(
                "repro.core.vector", fromlist=["_mode_from_env"]
            )._mode_from_env(),
            "vector",
        ),
        (
            "REPRO_IPC",
            lambda: __import__(
                "repro.runtime.shm", fromlist=["_mode_from_env"]
            )._mode_from_env(),
            "shm",
        ),
        (
            "REPRO_ARTIFACTS",
            lambda: __import__(
                "repro.artifacts.store", fromlist=["_mode_from_env"]
            )._mode_from_env(),
            "on",
        ),
    ],
)
class TestModeEnvRejection:
    def test_invalid_value_raises_named_configuration_error(
        self, monkeypatch, variable, parser, valid
    ):
        monkeypatch.setenv(variable, "bogus-mode")
        with pytest.raises(ConfigurationError) as excinfo:
            parser()
        message = str(excinfo.value)
        assert variable in message
        assert "bogus-mode" in message

    def test_valid_value_accepted(self, monkeypatch, variable, parser, valid):
        monkeypatch.setenv(variable, valid)
        assert parser() == valid

    def test_value_is_case_and_space_normalised(
        self, monkeypatch, variable, parser, valid
    ):
        monkeypatch.setenv(variable, f"  {valid.upper()} ")
        assert parser() == valid


class TestGraphBackendEnv:
    def test_invalid_backend_raises_named_configuration_error(
        self, monkeypatch
    ):
        from repro.graph import backend as graph_backend

        monkeypatch.setenv("REPRO_GRAPH", "neo4j")
        monkeypatch.setattr(graph_backend, "_override", None)
        with pytest.raises(ConfigurationError) as excinfo:
            graph_backend.active_backend()
        message = str(excinfo.value)
        assert "REPRO_GRAPH" in message
        assert "neo4j" in message


class TestNumericEnvRejection:
    def test_compile_limit_must_be_an_integer(self, monkeypatch):
        from repro.probability import engine

        monkeypatch.setenv("REPRO_ENGINE_COMPILE_LIMIT", "many")
        with pytest.raises(ConfigurationError) as excinfo:
            engine._compile_limit_from_env()
        assert "REPRO_ENGINE_COMPILE_LIMIT" in str(excinfo.value)

    def test_compile_limit_must_be_positive(self, monkeypatch):
        from repro.probability import engine

        monkeypatch.setenv("REPRO_ENGINE_COMPILE_LIMIT", "0")
        with pytest.raises(ConfigurationError) as excinfo:
            engine._compile_limit_from_env()
        assert "REPRO_ENGINE_COMPILE_LIMIT" in str(excinfo.value)

    def test_artifact_capacity_grammar_is_enforced(self, monkeypatch):
        from repro.artifacts.store import ArtifactStore

        monkeypatch.setenv(
            "REPRO_ARTIFACTS_CAPACITY", "kernels=big,plans=16"
        )
        with pytest.raises(ConfigurationError) as excinfo:
            ArtifactStore._parse_capacity_env()
        assert "REPRO_ARTIFACTS_CAPACITY" in str(excinfo.value)

    def test_artifact_capacity_valid_grammar_parses(self, monkeypatch):
        from repro.artifacts.store import ArtifactStore

        monkeypatch.setenv(
            "REPRO_ARTIFACTS_CAPACITY", "kernels=2048, plans=16"
        )
        assert ArtifactStore._parse_capacity_env() == {
            "kernels": 2048,
            "plans": 16,
        }


class TestSetterRejection:
    """Programmatic setters reject like the env parsers, typed."""

    def test_set_engine_mode(self):
        from repro.probability.engine import set_engine_mode

        with pytest.raises(ConfigurationError):
            set_engine_mode("turbo")

    def test_set_decide_mode(self):
        from repro.core.vector import set_decide_mode

        with pytest.raises(ConfigurationError):
            set_decide_mode("turbo")

    def test_set_ipc_mode(self):
        from repro.runtime.shm import set_ipc_mode

        with pytest.raises(ConfigurationError):
            set_ipc_mode("carrier-pigeon")

    def test_set_artifacts_mode(self):
        from repro.artifacts.store import set_artifacts_mode

        with pytest.raises(ConfigurationError):
            set_artifacts_mode("maybe")

    def test_configuration_error_is_a_repro_error(self):
        # Backward compatibility: existing ``except ReproError`` sites
        # (the CLI's top-level handler) still catch configuration
        # failures.
        assert issubclass(ConfigurationError, ReproError)
