"""Unit tests for the consolidated report generator."""

import json

import pytest

from repro.errors import ReproError
from repro.analysis import (
    EXPERIMENT_TITLES,
    load_results,
    render_report,
    report_summary,
)


@pytest.fixture
def results_dir(tmp_path):
    rows_t5 = [
        {"experiment": "T5", "regime": "at threshold", "n": 4, "value": 0.5},
        {"experiment": "T5", "regime": "below", "n": 16, "value": 35},
    ]
    rows_f1 = [{"experiment": "F1", "artifact": "grid", "points": 861}]
    (tmp_path / "T5.json").write_text(json.dumps(rows_t5))
    (tmp_path / "F1.json").write_text(json.dumps(rows_f1))
    # A non-list JSON should be ignored, not crash.
    (tmp_path / "junk.json").write_text(json.dumps({"not": "a list"}))
    # Non-JSON files are skipped.
    (tmp_path / "notes.txt").write_text("irrelevant")
    return str(tmp_path)


class TestLoadResults:
    def test_loads_list_artifacts(self, results_dir):
        artifacts = load_results(results_dir)
        assert set(artifacts) == {"T5", "F1"}
        assert len(artifacts["T5"]) == 2

    def test_missing_directory(self):
        with pytest.raises(ReproError):
            load_results("/nonexistent/results")

    def test_empty_directory(self, tmp_path):
        with pytest.raises(ReproError):
            load_results(str(tmp_path))


class TestRenderReport:
    def test_orders_by_canonical_sequence(self, results_dir):
        report = render_report(load_results(results_dir))
        # F1 comes before T5 in the canonical order.
        assert report.index("[F1]") < report.index("[T5]")
        assert EXPERIMENT_TITLES["T5"] in report

    def test_experiment_filter(self, results_dir):
        report = render_report(load_results(results_dir), ["T5"])
        assert "[T5]" in report
        assert "[F1]" not in report

    def test_unknown_experiment_rejected(self, results_dir):
        with pytest.raises(ReproError):
            render_report(load_results(results_dir), ["ZZ"])

    def test_experiment_column_dropped(self, results_dir):
        report = render_report(load_results(results_dir), ["T5"])
        header_line = report.splitlines()[1]
        assert "experiment" not in header_line

    def test_summary_counts(self, results_dir):
        summary = report_summary(load_results(results_dir))
        assert summary == {"T5": 2, "F1": 1}


class TestRealArtifacts:
    def test_report_over_checked_in_results(self, benchmark_results_dir):
        # The fixture falls back to synthetic artifacts when the
        # checked-in ones are absent, so this runs unconditionally.
        artifacts = load_results(benchmark_results_dir)
        report = render_report(artifacts)
        assert "[T5]" in report
        assert "phase shift" in report
