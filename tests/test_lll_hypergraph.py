"""Unit tests for repro.lll.hypergraph."""

import pytest

from repro.errors import ReproError
from repro.lll import Hyperedge, Hypergraph


class TestHyperedge:
    def test_nodes_are_frozen(self):
        edge = Hyperedge("e", [1, 2, 3])
        assert edge.nodes == frozenset({1, 2, 3})
        assert edge.cardinality == 3

    def test_duplicates_collapse(self):
        edge = Hyperedge("e", [1, 1, 2])
        assert edge.cardinality == 2

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            Hyperedge("e", [])

    def test_contains_and_iter(self):
        edge = Hyperedge("e", [1, 2])
        assert 1 in edge
        assert 3 not in edge
        assert set(edge) == {1, 2}


class TestHypergraph:
    @pytest.fixture
    def hypergraph(self):
        h = Hypergraph()
        h.add_edge("e1", [1, 2, 3])
        h.add_edge("e2", [3, 4])
        h.add_edge("e3", [4])
        h.add_node(5)
        return h

    def test_counts(self, hypergraph):
        assert hypergraph.num_nodes == 5
        assert hypergraph.num_edges == 3

    def test_rank(self, hypergraph):
        assert hypergraph.rank == 3

    def test_degree(self, hypergraph):
        assert hypergraph.degree(3) == 2
        assert hypergraph.degree(5) == 0

    def test_max_degree(self, hypergraph):
        assert hypergraph.max_degree == 2

    def test_incident_edges(self, hypergraph):
        names = {edge.name for edge in hypergraph.incident_edges(4)}
        assert names == {"e2", "e3"}

    def test_neighbors(self, hypergraph):
        assert hypergraph.neighbors(3) == frozenset({1, 2, 4})
        assert hypergraph.neighbors(5) == frozenset()

    def test_edge_lookup(self, hypergraph):
        assert hypergraph.edge("e1").cardinality == 3
        with pytest.raises(ReproError):
            hypergraph.edge("missing")

    def test_duplicate_edge_name_rejected(self, hypergraph):
        with pytest.raises(ReproError):
            hypergraph.add_edge("e1", [1, 2])

    def test_unknown_node_raises(self, hypergraph):
        with pytest.raises(ReproError):
            hypergraph.incident_edges(99)

    def test_add_node_idempotent(self, hypergraph):
        hypergraph.add_node(5)
        assert hypergraph.num_nodes == 5

    def test_empty_hypergraph(self):
        h = Hypergraph()
        assert h.rank == 0
        assert h.max_degree == 0
        assert h.nodes == ()
