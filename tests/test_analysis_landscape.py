"""Unit tests for the complexity-landscape survey data."""

import pytest

from repro.analysis import (
    LandscapeEntry,
    landscape_rows,
    landscape_table,
    lower_bound_table,
)


class TestLandscapeTables:
    def test_paper_rows_present(self):
        references = {entry.reference for entry in landscape_table()}
        assert "this paper (Cor. 1.2)" in references
        assert "this paper (Cor. 1.4)" in references

    def test_paper_rows_are_deterministic(self):
        paper_rows = [
            entry
            for entry in landscape_table()
            if entry.reference.startswith("this paper")
        ]
        assert len(paper_rows) == 2
        assert all(entry.deterministic for entry in paper_rows)
        assert all("2^-d" in entry.criterion for entry in paper_rows)

    def test_surveyed_references_cover_related_work(self):
        references = {entry.reference for entry in landscape_table()}
        for expected in ("MT10", "CPS17", "Gha16", "FG17", "GHK18"):
            assert expected in references

    def test_lower_bounds(self):
        bounds = lower_bound_table()
        runtimes = {entry.runtime for entry in bounds}
        assert "Omega(log log n)" in runtimes
        assert "Omega(log n)" in runtimes
        assert "Omega(log* n)" in runtimes
        # The deterministic lower bound is the Omega(log n) one.
        deterministic = [e for e in bounds if e.deterministic]
        assert len(deterministic) == 1
        assert deterministic[0].runtime == "Omega(log n)"

    def test_flattened_rows(self):
        rows = landscape_rows()
        kinds = {row["kind"] for row in rows}
        assert kinds == {"upper bound", "lower bound"}
        assert len(rows) == len(landscape_table()) + len(lower_bound_table())

    def test_entries_frozen(self):
        entry = landscape_table()[0]
        with pytest.raises(AttributeError):
            entry.runtime = "O(1)"


class TestCliLandscape:
    def test_info_landscape_flag(self, capsys):
        from repro.cli import main

        assert main(["info", "--landscape"]) == 0
        out = capsys.readouterr().out
        assert "complexity landscape" in out
        assert "Cor. 1.4" in out
