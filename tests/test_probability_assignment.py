"""Unit tests for repro.probability.assignment."""

import pytest

from repro.errors import InvalidAssignmentError
from repro.probability import DiscreteVariable, PartialAssignment


@pytest.fixture
def x():
    return DiscreteVariable("x", (0, 1, 2))


@pytest.fixture
def y():
    return DiscreteVariable("y", ("a", "b"))


class TestFixing:
    def test_fix_and_read(self, x):
        assignment = PartialAssignment()
        assignment.fix(x, 1)
        assert assignment.is_fixed("x")
        assert assignment.value_of("x") == 1

    def test_fix_returns_self_for_chaining(self, x, y):
        assignment = PartialAssignment().fix(x, 0).fix(y, "a")
        assert len(assignment) == 2

    def test_fix_out_of_support_raises(self, x):
        with pytest.raises(InvalidAssignmentError):
            PartialAssignment().fix(x, 99)

    def test_refix_same_value_is_idempotent(self, x):
        assignment = PartialAssignment().fix(x, 1)
        assignment.fix(x, 1)
        assert assignment.value_of("x") == 1

    def test_refix_different_value_raises(self, x):
        assignment = PartialAssignment().fix(x, 1)
        with pytest.raises(InvalidAssignmentError):
            assignment.fix(x, 2)

    def test_fixed_returns_independent_copy(self, x, y):
        base = PartialAssignment().fix(x, 0)
        extended = base.fixed(y, "b")
        assert not base.is_fixed("y")
        assert extended.is_fixed("y")
        assert extended.value_of("x") == 0

    def test_none_is_a_valid_value(self):
        variable = DiscreteVariable("n", (None, 1))
        assignment = PartialAssignment().fix(variable, None)
        assert assignment.is_fixed("n")
        assert assignment.value_of("n") is None


class TestQueries:
    def test_value_of_unfixed_raises(self):
        with pytest.raises(InvalidAssignmentError):
            PartialAssignment().value_of("x")

    def test_get_with_default(self, x):
        assignment = PartialAssignment().fix(x, 2)
        assert assignment.get("x") == 2
        assert assignment.get("missing", "fallback") == "fallback"

    def test_contains_and_iter(self, x, y):
        assignment = PartialAssignment().fix(x, 0).fix(y, "a")
        assert "x" in assignment
        assert set(iter(assignment)) == {"x", "y"}

    def test_items_and_as_dict(self, x):
        assignment = PartialAssignment().fix(x, 1)
        assert dict(assignment.items()) == {"x": 1}
        copy = assignment.as_dict()
        copy["x"] = 99
        assert assignment.value_of("x") == 1


class TestRestrictionKey:
    def test_key_ignores_out_of_scope(self, x, y):
        assignment = PartialAssignment().fix(x, 0).fix(y, "a")
        assert assignment.restriction_key(["x"]) == (("x", 0),)

    def test_key_ignores_unfixed_scope(self, x):
        assignment = PartialAssignment().fix(x, 0)
        assert assignment.restriction_key(["x", "z"]) == (("x", 0),)

    def test_keys_equal_iff_scope_agrees(self, x, y):
        first = PartialAssignment().fix(x, 0).fix(y, "a")
        second = PartialAssignment().fix(x, 0).fix(y, "b")
        assert first.restriction_key(["x"]) == second.restriction_key(["x"])
        assert first.restriction_key(["x", "y"]) != second.restriction_key(
            ["x", "y"]
        )

    def test_key_order_is_canonical(self, x, y):
        assignment = PartialAssignment().fix(y, "a").fix(x, 0)
        key = assignment.restriction_key(["y", "x"])
        assert key == assignment.restriction_key(["x", "y"])


class TestCopy:
    def test_copy_is_independent(self, x, y):
        base = PartialAssignment().fix(x, 0)
        clone = base.copy()
        clone.fix(y, "a")
        assert not base.is_fixed("y")
