"""Unit tests for the LOCAL-model simulator substrate."""

import networkx as nx
import pytest

from repro.errors import SimulationError
from repro.local_model import (
    BroadcastValue,
    LocalAlgorithm,
    Network,
    Simulator,
    line_graph_network,
    run_algorithm,
    square_graph_network,
)
from repro.generators import cycle_graph, random_regular_graph


class TestNetwork:
    def test_basic_properties(self):
        network = Network(cycle_graph(5))
        assert network.num_nodes == 5
        assert network.max_degree == 2
        assert network.degree(0) == 2

    def test_neighbors_sorted(self):
        network = Network(cycle_graph(5))
        assert network.neighbors(0) == (1, 4)

    def test_port_of(self):
        network = Network(cycle_graph(5))
        assert network.port_of(0, 1) == 0
        assert network.port_of(0, 4) == 1
        with pytest.raises(SimulationError):
            network.port_of(0, 2)

    def test_identifier_space(self):
        network = Network(cycle_graph(7))
        assert network.identifier_space() == 7

    def test_identifier_space_requires_ints(self):
        graph = nx.Graph()
        graph.add_edge("a", "b")
        network = Network(graph)
        with pytest.raises(SimulationError):
            network.identifier_space()

    def test_rejects_empty_graph(self):
        with pytest.raises(SimulationError):
            Network(nx.Graph())

    def test_rejects_self_loops(self):
        graph = nx.Graph()
        graph.add_edge(0, 0)
        with pytest.raises(SimulationError):
            Network(graph)


class TestVirtualGraphs:
    def test_line_graph_of_triangle(self):
        network = Network(nx.cycle_graph(3))
        virtual, index = line_graph_network(network)
        assert virtual.num_nodes == 3
        # All three edges of a triangle pairwise share endpoints.
        assert virtual.graph.number_of_edges() == 3
        assert set(index.keys()) == {(0, 1), (0, 2), (1, 2)}

    def test_line_graph_degree_bound(self):
        graph = random_regular_graph(20, 4, seed=0)
        virtual, _index = line_graph_network(Network(graph))
        assert virtual.max_degree <= 2 * 4 - 2

    def test_square_graph_of_path(self):
        network = Network(nx.path_graph(4))
        square = square_graph_network(network)
        assert square.graph.has_edge(0, 2)
        assert square.graph.has_edge(1, 3)
        assert not square.graph.has_edge(0, 3)

    def test_square_graph_degree_bound(self):
        graph = random_regular_graph(20, 3, seed=1)
        square = square_graph_network(Network(graph))
        assert square.max_degree <= 3 * 3


class TestSimulator:
    def test_broadcast_learns_k_hop_neighborhood(self):
        network = Network(cycle_graph(8))
        result = run_algorithm(network, BroadcastValue(2))
        assert result.rounds == 2
        assert result.output_of(0) == frozenset({6, 7, 0, 1, 2})

    def test_message_counting(self):
        network = Network(cycle_graph(4))
        result = run_algorithm(network, BroadcastValue(1))
        # 4 nodes x 2 neighbors x 1 round.
        assert result.messages_delivered == 8

    def test_round_budget_enforced(self):
        class NeverHalts(LocalAlgorithm):
            def receive(self, node, messages, round_number):
                pass

        network = Network(cycle_graph(4))
        with pytest.raises(SimulationError):
            run_algorithm(network, NeverHalts(), max_rounds=5)

    def test_double_halt_rejected(self):
        class DoubleHalt(LocalAlgorithm):
            def receive(self, node, messages, round_number):
                node.halt_with(1)
                node.halt_with(2)

        network = Network(cycle_graph(4))
        with pytest.raises(SimulationError):
            run_algorithm(network, DoubleHalt())

    def test_messaging_non_neighbor_rejected(self):
        class BadSender(LocalAlgorithm):
            def send(self, node, round_number):
                return {(node.identifier + 2) % 4: "hi"}

        network = Network(cycle_graph(4))
        with pytest.raises(SimulationError):
            run_algorithm(network, BadSender())

    def test_inputs_are_delivered(self):
        class EchoInput(LocalAlgorithm):
            def receive(self, node, messages, round_number):
                node.halt_with(node.input)

        network = Network(cycle_graph(3))
        result = run_algorithm(
            network, EchoInput(), inputs={0: "a", 1: "b", 2: "c"}
        )
        assert result.outputs == {0: "a", 1: "b", 2: "c"}

    def test_halted_nodes_stop_sending(self):
        class HaltEarly(LocalAlgorithm):
            def initialize(self, node):
                node.memory["received"] = 0

            def send(self, node, round_number):
                return {n: "ping" for n in node.neighbors}

            def receive(self, node, messages, round_number):
                node.memory["received"] += sum(
                    1 for m in messages.values() if m is not None
                )
                if node.identifier == 0 or round_number == 2:
                    node.halt_with(node.memory["received"])

        network = Network(cycle_graph(4))
        result = run_algorithm(network, HaltEarly())
        # Node 1 is adjacent to node 0, which halts after round 1, so in
        # round 2 node 1 receives from only one neighbor.
        assert result.output_of(1) == 2 + 1

    def test_state_inspection(self):
        network = Network(cycle_graph(3))
        simulator = Simulator(network, BroadcastValue(1))
        simulator.step()
        assert simulator.rounds == 1
        assert simulator.all_halted
        assert simulator.state_of(0).halted
