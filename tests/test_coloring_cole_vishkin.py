"""Unit tests for the Cole-Vishkin 3-coloring algorithm."""

import networkx as nx
import pytest

from repro.errors import ColoringError
from repro.coloring import (
    ColeVishkinAlgorithm,
    compute_cole_vishkin_coloring,
    cv_reduce,
    cv_rounds_needed,
    cycle_parents,
    is_proper_vertex_coloring,
)
from repro.generators import balanced_tree, cycle_graph
from repro.local_model import Network


class TestReduceStep:
    def test_known_example(self):
        # c = 0b1100, parent = 0b1010: lowest differing bit is position 1,
        # bit_1(c) = 0 -> new color 2.
        assert cv_reduce(0b1100, 0b1010) == 2

    def test_child_parent_stay_distinct(self):
        import random

        rng = random.Random(0)
        for _ in range(2000):
            child = rng.randrange(1 << 16)
            parent = rng.randrange(1 << 16)
            if child == parent:
                continue
            grandparent = rng.randrange(1 << 16)
            if parent == grandparent:
                continue
            new_child = cv_reduce(child, parent)
            new_parent = cv_reduce(parent, grandparent)
            assert new_child != new_parent or child == parent

    def test_equal_colors_rejected(self):
        with pytest.raises(ColoringError):
            cv_reduce(5, 5)


class TestRoundsNeeded:
    def test_small_spaces_need_nothing(self):
        assert cv_rounds_needed(6) == 0
        assert cv_rounds_needed(2) == 0

    def test_log_star_growth(self):
        rounds = [cv_rounds_needed(10**k) for k in (2, 4, 8, 16)]
        assert rounds == sorted(rounds)
        assert rounds[-1] - rounds[0] <= 2
        assert rounds[-1] <= 7


class TestOnCycles:
    @pytest.mark.parametrize("n", [5, 11, 50, 101, 1024])
    def test_proper_three_coloring(self, n):
        graph = cycle_graph(n)
        result = compute_cole_vishkin_coloring(
            Network(graph), cycle_parents(n)
        )
        assert is_proper_vertex_coloring(graph, result["colors"])
        assert max(result["colors"].values()) <= 2

    def test_round_count_matches_advertised(self):
        n = 256
        algorithm = ColeVishkinAlgorithm(n)
        result = compute_cole_vishkin_coloring(
            Network(cycle_graph(n)), cycle_parents(n)
        )
        assert result["rounds"] == algorithm.rounds_needed

    def test_rounds_flat_in_n(self):
        small = compute_cole_vishkin_coloring(
            Network(cycle_graph(100)), cycle_parents(100)
        )
        large = compute_cole_vishkin_coloring(
            Network(cycle_graph(3200)), cycle_parents(3200)
        )
        assert large["rounds"] - small["rounds"] <= 1


class TestOnTrees:
    def test_rooted_binary_tree(self):
        graph = balanced_tree(2, 5)
        # Parent pointers from the BFS structure: node 0 is the root.
        parents = {0: None}
        for node in sorted(graph.nodes()):
            for neighbor in graph.neighbors(node):
                if neighbor > node:
                    parents[neighbor] = node
        result = compute_cole_vishkin_coloring(Network(graph), parents)
        assert is_proper_vertex_coloring(graph, result["colors"])
        assert max(result["colors"].values()) <= 2

    def test_path_with_root(self):
        graph = nx.path_graph(50)
        parents = {i: i + 1 for i in range(49)}
        parents[49] = None
        result = compute_cole_vishkin_coloring(Network(graph), parents)
        assert is_proper_vertex_coloring(graph, result["colors"])


class TestValidation:
    def test_missing_parent_entry(self):
        graph = cycle_graph(5)
        with pytest.raises(ColoringError):
            compute_cole_vishkin_coloring(Network(graph), {0: 1})

    def test_parent_must_be_neighbor(self):
        graph = cycle_graph(5)
        parents = cycle_parents(5)
        parents[0] = 2  # not adjacent to 0
        with pytest.raises(ColoringError):
            compute_cole_vishkin_coloring(Network(graph), parents)

    def test_cycle_parents_validation(self):
        with pytest.raises(ColoringError):
            cycle_parents(2)

    def test_identifier_space_validation(self):
        with pytest.raises(ColoringError):
            ColeVishkinAlgorithm(0)
