"""Differential guarantee of the vector decide plane.

The whole-class batch path (``decide_class``/``commit_class``, lowered
and executed by :mod:`repro.core.vector`) must be *bit-identical* to the
per-op scalar path it replaces: same final assignment, same step
records, same certified phi ledger — exact ``==``, not approximate.
The scalar path is retained verbatim behind ``REPRO_DECIDE=scalar`` as
the differential oracle, so every suite here runs the same seeded
workload once per decide mode and compares transcripts.

Coverage axes: the three fixer disciplines (rank 2, rank 3, naive
rank-r), the three scheduler backends, the naive (uncompiled) engine —
where the vector plane must *fall back* without perturbing anything —
and an ambient ``REPRO_FAULTS`` crash schedule on the process backend,
where recovery and batching compose.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.naive_rankr import NaiveRankRFixer
from repro.core.rank2 import Rank2Fixer
from repro.core.rank3 import Rank3Fixer
from repro.core.vector import (
    decide_mode,
    set_decide_mode,
    using_decide,
    vector_enabled,
)
from repro.errors import ReproError
from repro.generators import (
    all_zero_edge_instance,
    all_zero_triple_instance,
    cycle_graph,
    cyclic_triples,
    random_regular_graph,
)
from repro.probability import reset_engine_stats
from repro.probability.engine import STATS, using_engine
from repro.runtime import make_scheduler, plan_for_instance

SLOW_SETTINGS = settings(
    deadline=None,
    max_examples=10,
    suppress_health_check=[HealthCheck.too_slow],
)

SCHEDULERS = ("serial", "batch", "process")


# ----------------------------------------------------------------------
# Strategies and the differential harness
# ----------------------------------------------------------------------
def rank2_specs():
    cycles = st.tuples(
        st.integers(min_value=3, max_value=14),
        st.integers(min_value=3, max_value=5),
    ).map(lambda t: ("cycle", t[0], t[1], 0))
    regulars = st.tuples(
        st.integers(min_value=4, max_value=7).map(lambda k: 2 * k),
        st.integers(min_value=5, max_value=6),
        st.integers(min_value=0, max_value=3),
    ).map(lambda t: ("regular", t[0], t[1], t[2]))
    return st.one_of(cycles, regulars)


def rank3_specs():
    return st.tuples(
        st.integers(min_value=5, max_value=16),
        st.integers(min_value=5, max_value=6),
    ).map(lambda t: ("triples", t[0], t[1], 0))


def build_instance(spec):
    family, n, alphabet, seed = spec
    if family == "cycle":
        return all_zero_edge_instance(cycle_graph(n), alphabet)
    if family == "regular":
        return all_zero_edge_instance(
            random_regular_graph(n, 3, seed=seed), alphabet
        )
    return all_zero_triple_instance(n, cyclic_triples(n), alphabet)


def make_fixer(kind, instance):
    if kind == "rank2":
        return Rank2Fixer(instance)
    if kind == "rank3":
        return Rank3Fixer(instance)
    return NaiveRankRFixer(instance)


def bounds_of(fixer):
    if hasattr(fixer, "certified_bounds"):
        return fixer.certified_bounds()
    return fixer.pstar.certified_bounds()


def transcript(spec, kind, scheduler_name, mode, **scheduler_kwargs):
    """One full run: fresh instance, fresh fixer, fresh scheduler."""
    instance = build_instance(spec)
    plan = plan_for_instance(instance)
    with using_decide(mode):
        fixer = make_fixer(kind, instance)
        scheduler = make_scheduler(scheduler_name, **scheduler_kwargs)
        scheduler.execute(fixer, plan, instance)
    values = {
        variable.name: fixer.assignment.value_of(variable.name)
        for variable in instance.variables
    }
    return values, fixer.steps, bounds_of(fixer)


def assert_identical(reference, candidate, label):
    assert candidate[0] == reference[0], f"{label}: assignments differ"
    assert candidate[1] == reference[1], f"{label}: step records differ"
    assert candidate[2] == reference[2], f"{label}: phi ledgers differ"


# ----------------------------------------------------------------------
# Vector vs scalar, across fixers and schedulers
# ----------------------------------------------------------------------
@SLOW_SETTINGS
@given(spec=rank2_specs())
def test_vector_identical_rank2(spec):
    reference = transcript(spec, "rank2", "serial", "scalar")
    for name in SCHEDULERS:
        assert_identical(
            reference,
            transcript(spec, "rank2", name, "vector"),
            f"rank2/{name}",
        )


@SLOW_SETTINGS
@given(spec=rank3_specs())
def test_vector_identical_rank3(spec):
    reference = transcript(spec, "rank3", "serial", "scalar")
    for name in SCHEDULERS:
        assert_identical(
            reference,
            transcript(spec, "rank3", name, "vector"),
            f"rank3/{name}",
        )


@SLOW_SETTINGS
@given(spec=rank3_specs())
def test_vector_identical_naive_rankr(spec):
    reference = transcript(spec, "naive", "serial", "scalar")
    for name in SCHEDULERS:
        assert_identical(
            reference,
            transcript(spec, "naive", name, "vector"),
            f"naive/{name}",
        )


def test_vector_path_actually_engages():
    """A fresh instance's serial vector run takes real stacked passes."""
    reset_engine_stats()
    spec = ("triples", 12, 6, 0)
    reference = transcript(spec, "rank3", "serial", "scalar")
    reset_engine_stats()
    candidate = transcript(spec, "rank3", "serial", "vector")
    assert_identical(reference, candidate, "engagement")
    # Either fresh stacked engine passes or template memo hits — never
    # zero of both (that would mean the scalar loop silently ran).
    assert STATS.vector_passes + STATS.vector_memo_hits > 0
    assert STATS.vector_fallbacks == 0


# ----------------------------------------------------------------------
# Fallback composition: naive engine, ambient fault schedule
# ----------------------------------------------------------------------
@settings(deadline=None, max_examples=6,
          suppress_health_check=[HealthCheck.too_slow])
@given(spec=rank3_specs())
def test_vector_identical_under_naive_engine(spec):
    """No compiled kernels -> the class path falls back, bit-identically."""
    with using_engine("naive"):
        reference = transcript(spec, "rank3", "serial", "scalar")
        candidate = transcript(spec, "rank3", "serial", "vector")
    assert_identical(reference, candidate, "naive-engine")


def test_vector_identical_under_ambient_fault_schedule(monkeypatch):
    """REPRO_FAULTS crash injection + worker-side class batching."""
    spec = ("triples", 14, 6, 0)
    reference = transcript(spec, "rank3", "serial", "scalar")
    monkeypatch.setenv("REPRO_FAULTS", "seed=3,crash=0.5,deadline=15")
    for mode in ("vector", "scalar"):
        candidate = transcript(
            spec, "rank3", "process", mode,
            max_workers=2, backoff_base=0.0,
        )
        assert_identical(reference, candidate, f"faults/{mode}")


# ----------------------------------------------------------------------
# Mode plumbing
# ----------------------------------------------------------------------
def test_decide_mode_plumbing():
    previous = decide_mode()
    try:
        assert set_decide_mode("scalar") == previous
        assert decide_mode() == "scalar"
        assert not vector_enabled()
        with using_decide("vector"):
            assert vector_enabled()
        assert decide_mode() == "scalar"
        with pytest.raises(ReproError):
            set_decide_mode("quantum")
    finally:
        set_decide_mode(previous)


def test_decide_class_returns_none_in_scalar_mode():
    instance = build_instance(("triples", 8, 6, 0))
    plan = plan_for_instance(instance)
    with using_decide("scalar"):
        fixer = Rank3Fixer(instance)
        assert fixer.decide_class(plan.classes[0].cells) is None


def test_commit_class_without_pending_state_uses_scalar_commit():
    """Worker-produced choices commit through the full-fidelity path."""
    instance = build_instance(("triples", 8, 6, 0))
    plan = plan_for_instance(instance)
    with using_decide("vector"):
        decider = Rank3Fixer(instance)
        cells = plan.classes[0].cells
        choices = decider.decide_class(cells)
        assert choices is not None
        # A different fixer never decided this class: no pending state.
        committer = Rank3Fixer(instance)
        committer.commit_class(cells, choices)
        decider.commit_class(cells, choices)
    assert committer.steps == decider.steps
