"""Unit tests for repro.probability.event: exact conditional probabilities."""

import math

import pytest

from repro.errors import EnumerationLimitError, UnknownVariableError
from repro.probability import BadEvent, DiscreteVariable, PartialAssignment


@pytest.fixture
def coins():
    return [DiscreteVariable.fair_coin(f"c{i}") for i in range(3)]


@pytest.fixture
def all_ones(coins):
    """Event: all three fair coins equal 1 (probability 1/8)."""
    return BadEvent.all_equal("E", coins, target=1)


class TestUnconditionalProbability:
    def test_all_ones(self, all_ones):
        assert all_ones.probability() == pytest.approx(1 / 8)

    def test_from_bad_outcomes(self, coins):
        event = BadEvent.from_bad_outcomes(
            "E", coins, [(0, 0, 0), (1, 1, 1)]
        )
        assert event.probability() == pytest.approx(2 / 8)

    def test_biased_variables(self):
        biased = [DiscreteVariable.bernoulli(f"b{i}", 0.1) for i in range(2)]
        event = BadEvent.all_equal("E", biased, target=1)
        assert event.probability() == pytest.approx(0.01)

    def test_impossible_event(self, coins):
        event = BadEvent("E", coins, lambda values: False)
        assert event.probability() == 0.0

    def test_certain_event(self, coins):
        event = BadEvent("E", coins, lambda values: True)
        assert event.probability() == 1.0


class TestConditionalProbability:
    def test_conditioning_on_scope_variable(self, all_ones, coins):
        partial = PartialAssignment().fix(coins[0], 1)
        assert all_ones.probability(partial) == pytest.approx(1 / 4)

    def test_conditioning_to_zero(self, all_ones, coins):
        partial = PartialAssignment().fix(coins[0], 0)
        assert all_ones.probability(partial) == 0.0

    def test_conditioning_out_of_scope_is_ignored(self, all_ones):
        other = DiscreteVariable.fair_coin("unrelated")
        partial = PartialAssignment().fix(other, 1)
        assert all_ones.probability(partial) == pytest.approx(1 / 8)

    def test_fully_conditioned(self, all_ones, coins):
        partial = PartialAssignment()
        for coin in coins:
            partial.fix(coin, 1)
        assert all_ones.probability(partial) == 1.0

    def test_occurs_requires_full_scope(self, all_ones, coins):
        partial = PartialAssignment().fix(coins[0], 1)
        with pytest.raises(UnknownVariableError):
            all_ones.occurs(partial)

    def test_occurs(self, all_ones, coins):
        partial = PartialAssignment()
        for coin in coins:
            partial.fix(coin, 1)
        assert all_ones.occurs(partial)


class TestConditionalIncrease:
    def test_increase_doubles_for_fair_coin(self, all_ones, coins):
        empty = PartialAssignment()
        inc = all_ones.conditional_increase(empty, coins[0], 1)
        assert inc == pytest.approx(2.0)

    def test_increase_zero_when_avoided(self, all_ones, coins):
        empty = PartialAssignment()
        assert all_ones.conditional_increase(empty, coins[0], 0) == 0.0

    def test_increase_one_out_of_scope(self, all_ones):
        other = DiscreteVariable.fair_coin("other")
        inc = all_ones.conditional_increase(PartialAssignment(), other, 1)
        assert inc == 1.0

    def test_increase_zero_probability_convention(self, coins):
        event = BadEvent("E", coins, lambda values: False)
        inc = event.conditional_increase(PartialAssignment(), coins[0], 1)
        assert inc == 0.0

    def test_expected_increase_is_one(self, all_ones, coins):
        empty = PartialAssignment()
        total = sum(
            prob * all_ones.conditional_increase(empty, coins[0], value)
            for value, prob in coins[0].support_items()
        )
        assert total == pytest.approx(1.0)


class TestCaching:
    def test_cache_grows_and_clears(self, all_ones, coins):
        all_ones.probability()
        partial = PartialAssignment().fix(coins[1], 0)
        all_ones.probability(partial)
        assert all_ones.cache_size == 2
        all_ones.clear_cache()
        assert all_ones.cache_size == 0

    def test_cache_hits_are_consistent(self, all_ones, coins):
        partial = PartialAssignment().fix(coins[2], 1)
        first = all_ones.probability(partial)
        second = all_ones.probability(partial)
        assert first == second


class TestValidation:
    def test_duplicate_scope_rejected(self, coins):
        with pytest.raises(UnknownVariableError):
            BadEvent("E", [coins[0], coins[0]], lambda values: True)

    def test_enumeration_limit(self):
        many = [DiscreteVariable.fair_coin(f"m{i}") for i in range(30)]
        event = BadEvent("E", many, lambda values: True, enumeration_limit=1024)
        with pytest.raises(EnumerationLimitError):
            event.probability()

    def test_repr_mentions_name(self, all_ones):
        assert "E" in repr(all_ones)
