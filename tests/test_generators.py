"""Unit tests for the workload generators."""

import networkx as nx
import pytest

from repro.errors import ReproError
from repro.generators import (
    all_zero_edge_instance,
    all_zero_triple_instance,
    balanced_tree,
    complete_graph,
    cycle_graph,
    cyclic_triples,
    degree_profile,
    grid_graph,
    hypercube_graph,
    mixed_rank_instance,
    partition_rounds_triples,
    path_graph,
    random_bipartite_regular,
    random_regular_graph,
    random_tree,
    random_triples,
    threshold_count_edge_instance,
    torus_graph,
    triples_degree_profile,
)


class TestGraphGenerators:
    def test_cycle(self):
        graph = cycle_graph(10)
        assert graph.number_of_nodes() == 10
        assert all(deg == 2 for _n, deg in graph.degree())

    def test_torus_is_4_regular(self):
        graph = torus_graph(4, 5)
        assert all(deg == 4 for _n, deg in graph.degree())

    def test_random_regular(self):
        graph = random_regular_graph(20, 3, seed=0)
        assert all(deg == 3 for _n, deg in graph.degree())

    def test_random_regular_seeded(self):
        first = random_regular_graph(20, 3, seed=1)
        second = random_regular_graph(20, 3, seed=1)
        assert set(first.edges()) == set(second.edges())

    def test_random_regular_validation(self):
        with pytest.raises(ReproError):
            random_regular_graph(5, 3, seed=0)  # odd product
        with pytest.raises(ReproError):
            random_regular_graph(4, 4, seed=0)

    def test_random_tree(self):
        graph = random_tree(15, seed=2)
        assert nx.is_tree(graph)
        assert graph.number_of_nodes() == 15

    def test_balanced_tree(self):
        graph = balanced_tree(2, 3)
        assert nx.is_tree(graph)
        assert graph.number_of_nodes() == 2**4 - 1

    def test_hypercube(self):
        graph = hypercube_graph(4)
        assert all(deg == 4 for _n, deg in graph.degree())
        assert graph.number_of_nodes() == 16

    def test_grid_and_path_and_complete(self):
        assert grid_graph(3, 4).number_of_nodes() == 12
        assert path_graph(5).number_of_edges() == 4
        assert complete_graph(5).number_of_edges() == 10

    def test_bipartite_regular(self):
        graph = random_bipartite_regular(6, 9, 3, seed=3)
        for u in range(6):
            assert graph.degree(u) == 3
        for v in range(6, 15):
            assert all(n < 6 for n in graph.neighbors(v))

    def test_degree_profile(self):
        profile = degree_profile(path_graph(4))
        assert profile["min"] == 1
        assert profile["max"] == 2


class TestTripleGenerators:
    def test_partition_rounds_regularity(self):
        triples = partition_rounds_triples(12, 3, seed=0)
        profile = triples_degree_profile(12, triples)
        assert profile["min"] == profile["max"] == 3
        assert len(set(triples)) == len(triples)

    def test_partition_rounds_validation(self):
        with pytest.raises(ReproError):
            partition_rounds_triples(10, 2, seed=0)  # not divisible by 3

    def test_random_triples_caps_usage(self):
        triples = random_triples(12, num_triples=10, max_per_node=3, seed=1)
        profile = triples_degree_profile(12, triples)
        assert profile["max"] <= 3
        assert len(triples) == 10

    def test_random_triples_infeasible(self):
        with pytest.raises(ReproError):
            random_triples(3, num_triples=2, max_per_node=1, seed=0)

    def test_cyclic_triples(self):
        triples = cyclic_triples(7)
        assert len(triples) == 7
        profile = triples_degree_profile(7, triples)
        assert profile["min"] == profile["max"] == 3


class TestInstanceBuilders:
    def test_all_zero_edge_dependency_graph(self):
        graph = cycle_graph(6)
        instance = all_zero_edge_instance(graph, 3)
        assert set(map(frozenset, instance.dependency_graph.edges())) == set(
            map(frozenset, graph.edges())
        )

    def test_all_zero_edge_probability(self):
        instance = all_zero_edge_instance(cycle_graph(6), 4)
        assert instance.max_event_probability == pytest.approx(4.0**-2)

    def test_nonuniform_probabilities(self):
        instance = all_zero_edge_instance(
            cycle_graph(6), 3, probabilities=(0.2, 0.4, 0.4)
        )
        assert instance.max_event_probability == pytest.approx(0.04)

    def test_isolated_node_rejected(self):
        graph = nx.Graph()
        graph.add_edge(0, 1)
        graph.add_node(2)
        with pytest.raises(ReproError):
            all_zero_edge_instance(graph, 3)

    def test_threshold_count_softer_than_all_zero(self):
        graph = cycle_graph(6)
        strict = all_zero_edge_instance(graph, 3)
        soft = threshold_count_edge_instance(graph, 3, min_zeros=1)
        assert (
            soft.max_event_probability > strict.max_event_probability
        )

    def test_all_zero_triple_probability(self):
        instance = all_zero_triple_instance(9, cyclic_triples(9), 5)
        assert instance.max_event_probability == pytest.approx(5.0**-3)

    def test_triple_validation(self):
        with pytest.raises(ReproError):
            all_zero_triple_instance(6, [(0, 1, 1)], 3)
        with pytest.raises(ReproError):
            all_zero_triple_instance(6, [(0, 1, 2), (0, 1, 2)], 3)
        with pytest.raises(ReproError):
            all_zero_triple_instance(7, [(0, 1, 2), (3, 4, 5)], 3)

    def test_mixed_rank_has_both(self):
        instance = mixed_rank_instance(
            cycle_graph(9), [(0, 3, 6)], 3, 5
        )
        ranks = {
            len(instance.events_of_variable(v.name))
            for v in instance.variables
        }
        assert 2 in ranks
        assert 3 in ranks


class TestParityInstances:
    def test_parity_probability_on_cycle(self):
        from repro.generators import parity_edge_instance

        instance = parity_edge_instance(cycle_graph(8), 0.1)
        assert instance.max_event_probability == pytest.approx(2 * 0.1 * 0.9)

    def test_parity_events_are_unkillable(self):
        from repro.generators import parity_edge_instance
        from repro.probability import PartialAssignment

        instance = parity_edge_instance(cycle_graph(6), 0.1)
        event = instance.events[0]
        # Fixing any single scope variable keeps the probability positive.
        for variable in event.variables:
            for value in (0, 1):
                partial = PartialAssignment().fix(variable, value)
                assert event.probability(partial) > 0.0

    def test_parity_bias_validation(self):
        from repro.generators import parity_edge_instance

        with pytest.raises(ReproError):
            parity_edge_instance(cycle_graph(6), 0.0)
        with pytest.raises(ReproError):
            parity_edge_instance(cycle_graph(6), 1.0)

    def test_parity_solvable_below_threshold(self):
        from repro.core import solve
        from repro.generators import parity_edge_instance
        from repro.lll import verify_solution

        instance = parity_edge_instance(cycle_graph(10), 0.1)
        result = solve(instance)
        assert verify_solution(instance, result.assignment).ok

    def test_threshold_count_with_bias(self):
        instance = threshold_count_edge_instance(
            torus_graph(3, 3), 3, min_zeros=3,
            probabilities=(0.2, 0.4, 0.4),
        )
        q = 0.2
        expected = 4 * q**3 * (1 - q) + q**4
        assert instance.max_event_probability == pytest.approx(expected)
