"""Unit tests for the greedy and Kuhn-Wattenhofer color reductions."""

import pytest

from repro.errors import ColoringError
from repro.coloring import (
    GreedyColorReductionAlgorithm,
    KWColorReductionAlgorithm,
    is_proper_vertex_coloring,
    kw_phase_schedule,
)
from repro.generators import cycle_graph, random_regular_graph
from repro.local_model import Network, run_algorithm


def _identity_coloring(graph):
    return {node: node for node in graph.nodes()}


class TestGreedyReduction:
    def test_reduces_to_target(self):
        graph = cycle_graph(20)
        algorithm = GreedyColorReductionAlgorithm(20, 3, 2)
        result = run_algorithm(
            Network(graph), algorithm, inputs=_identity_coloring(graph)
        )
        colors = result.outputs
        assert is_proper_vertex_coloring(graph, colors)
        assert max(colors.values()) < 3
        assert result.rounds == 20 - 3

    def test_target_must_exceed_degree(self):
        with pytest.raises(ColoringError):
            GreedyColorReductionAlgorithm(10, 2, 2)

    def test_noop_when_palette_small(self):
        graph = cycle_graph(4)
        algorithm = GreedyColorReductionAlgorithm(4, 5, 2)
        result = run_algorithm(
            Network(graph), algorithm, inputs=_identity_coloring(graph)
        )
        assert result.rounds == 0

    def test_invalid_input_color_rejected(self):
        graph = cycle_graph(4)
        algorithm = GreedyColorReductionAlgorithm(4, 3, 2)
        with pytest.raises(ColoringError):
            run_algorithm(Network(graph), algorithm, inputs={0: 7})


class TestKWSchedule:
    def test_phases_halve_palette(self):
        schedule = kw_phase_schedule(100, 5)
        palettes = [m for m, _s in schedule]
        assert palettes[0] == 100
        assert all(
            later <= (earlier + 1) // 2 + 5
            for earlier, later in zip(palettes, palettes[1:])
        )

    def test_empty_when_already_small(self):
        assert kw_phase_schedule(5, 5) == []
        assert kw_phase_schedule(3, 5) == []

    def test_round_count_logarithmic(self):
        target = 9
        rounds_1k = KWColorReductionAlgorithm(1000, target, 8).rounds_needed
        rounds_1m = KWColorReductionAlgorithm(10**6, target, 8).rounds_needed
        # Doubling the exponent should roughly double the rounds, far from
        # the linear cost of the greedy reduction.
        assert rounds_1m < 3 * rounds_1k
        assert rounds_1m < 400


class TestKWReduction:
    @pytest.mark.parametrize("n", [20, 50, 128])
    def test_reduces_cycle(self, n):
        graph = cycle_graph(n)
        algorithm = KWColorReductionAlgorithm(n, 3, 2)
        result = run_algorithm(
            Network(graph), algorithm, inputs=_identity_coloring(graph)
        )
        colors = result.outputs
        assert is_proper_vertex_coloring(graph, colors)
        assert max(colors.values()) < 3

    def test_reduces_regular_graph(self):
        graph = random_regular_graph(60, 4, seed=2)
        algorithm = KWColorReductionAlgorithm(60, 5, 4)
        result = run_algorithm(
            Network(graph), algorithm, inputs=_identity_coloring(graph)
        )
        colors = result.outputs
        assert is_proper_vertex_coloring(graph, colors)
        assert max(colors.values()) < 5

    def test_faster_than_greedy(self):
        graph = cycle_graph(200)
        kw = KWColorReductionAlgorithm(200, 3, 2)
        greedy = GreedyColorReductionAlgorithm(200, 3, 2)
        assert kw.rounds_needed < greedy.rounds_needed

    def test_target_must_exceed_degree(self):
        with pytest.raises(ColoringError):
            KWColorReductionAlgorithm(10, 2, 2)

    def test_matches_advertised_rounds(self):
        graph = cycle_graph(50)
        algorithm = KWColorReductionAlgorithm(50, 3, 2)
        result = run_algorithm(
            Network(graph), algorithm, inputs=_identity_coloring(graph)
        )
        assert result.rounds == algorithm.rounds_needed
