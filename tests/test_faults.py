"""The fault-injection plane and the execution plane's recovery promise.

The paper's guarantee is adversarial in the *mathematical* order of
fixing; the execution plane promises the systems-level analogue: under
any injected fault schedule — worker crashes, hangs past the deadline,
slow replies, dropped or duplicated simulator messages — a run either
recovers to the exact ``SerialScheduler`` transcript or raises a typed
error naming the fault.  These tests pin both halves: the determinism
of :class:`repro.faults.FaultPlan` itself, and the bit-identity of every
recovery path.
"""

from __future__ import annotations

import pytest

from repro.core import (
    certify_recovery,
    run_audit,
    solve_distributed,
    solve_distributed_local,
)
from repro.errors import (
    FaultRecoveryError,
    FaultSpecError,
    ReproError,
    SchedulerProtocolError,
)
from repro.faults import (
    ENV_VAR,
    FaultPlan,
    WorkerFault,
    fault_plan_from_env,
    parse_fault_spec,
)
from repro.generators import (
    all_zero_edge_instance,
    all_zero_triple_instance,
    cycle_graph,
    cyclic_triples,
)
from repro.obs.recorder import recording
from repro.runtime import ProcessScheduler, SerialScheduler


def fast_process_scheduler(**kwargs):
    """A ProcessScheduler tuned for tests: small pool, no real backoff."""
    kwargs.setdefault("max_workers", 2)
    kwargs.setdefault("backoff_base", 0.0)
    kwargs.setdefault("deadline", 15.0)
    return ProcessScheduler(**kwargs)


# ----------------------------------------------------------------------
# FaultPlan: validation, determinism, injection semantics
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_inert_plan_is_falsy(self):
        assert not FaultPlan()
        assert not FaultPlan().has_worker_faults
        assert not FaultPlan().has_message_faults

    def test_rate_validation(self):
        with pytest.raises(FaultSpecError):
            FaultPlan(crash_rate=1.5)
        with pytest.raises(FaultSpecError):
            FaultPlan(drop_rate=-0.1)
        with pytest.raises(FaultSpecError):
            FaultPlan(max_redelivery=0)
        with pytest.raises(FaultSpecError):
            FaultPlan(explicit_chunks=((0, "explode"),))

    def test_worker_fault_determinism(self):
        plan = FaultPlan(seed=11, crash_rate=0.4, slow_rate=0.3)
        again = FaultPlan(seed=11, crash_rate=0.4, slow_rate=0.3)
        schedule = [plan.worker_fault(c, a) for c in range(40) for a in (0, 1)]
        assert schedule == [
            again.worker_fault(c, a) for c in range(40) for a in (0, 1)
        ]
        # A different seed produces a different schedule.
        other = FaultPlan(seed=12, crash_rate=0.4, slow_rate=0.3)
        assert schedule != [
            other.worker_fault(c, a) for c in range(40) for a in (0, 1)
        ]

    def test_explicit_pin_fires_first_attempt_only(self):
        plan = FaultPlan(explicit_chunks=((3, "crash"),))
        assert plan.worker_fault(3, 0) == WorkerFault("crash")
        assert plan.worker_fault(3, 1) is None
        assert plan.worker_fault(2, 0) is None

    def test_rate_one_faults_every_attempt(self):
        plan = FaultPlan(crash_rate=1.0)
        for attempt in range(4):
            fault = plan.worker_fault(0, attempt)
            assert fault is not None and fault.kind == "crash"

    def test_durations_attached(self):
        plan = FaultPlan(
            explicit_chunks=((0, "hang"), (1, "slow")),
            hang_seconds=9.0,
            slow_seconds=0.25,
        )
        assert plan.worker_fault(0, 0) == WorkerFault("hang", 9.0)
        assert plan.worker_fault(1, 0) == WorkerFault("slow", 0.25)

    def test_message_action_semantics(self):
        plan = FaultPlan(seed=5, drop_rate=1.0)
        # Drops re-draw per attempt: rate 1.0 drops forever.
        assert all(
            plan.message_action(1, 0, attempt) == "drop"
            for attempt in range(4)
        )
        dup = FaultPlan(seed=5, duplicate_rate=1.0)
        assert dup.message_action(1, 0, 0) == "duplicate"
        # Duplication is decided once, on the first attempt.
        assert dup.message_action(1, 0, 1) is None

    def test_describe_is_json_friendly(self):
        import json

        plan = FaultPlan(
            seed=3,
            crash_rate=0.5,
            explicit_chunks=((2, "hang"),),
            deadline=1.5,
        )
        summary = plan.describe()
        assert json.loads(json.dumps(summary)) == summary
        assert summary["seed"] == 3
        assert summary["explicit_chunks"] == {"2": "hang"}


# ----------------------------------------------------------------------
# Spec grammar (CLI flag and REPRO_FAULTS)
# ----------------------------------------------------------------------
class TestFaultSpec:
    def test_full_grammar(self):
        plan = parse_fault_spec(
            "seed=7, crash=0.3, hang@2, drop=0.05, dup=0.02,"
            " deadline=0.5, redeliver=3, slow_seconds=0.2"
        )
        assert plan.seed == 7
        assert plan.crash_rate == 0.3
        assert plan.explicit_chunks == ((2, "hang"),)
        assert plan.drop_rate == 0.05
        assert plan.duplicate_rate == 0.02
        assert plan.deadline == 0.5
        assert plan.max_redelivery == 3
        assert plan.slow_seconds == 0.2

    def test_duplicate_alias(self):
        assert parse_fault_spec("duplicate=0.1").duplicate_rate == 0.1

    @pytest.mark.parametrize(
        "spec",
        [
            "explode=0.5",          # unknown key
            "crash",                # missing separator
            "crash=lots",           # non-numeric rate
            "explode@3",            # unknown pinned kind
            "crash@first",          # non-integer chunk
            "crash=2.0",            # out-of-range rate (via FaultPlan)
        ],
    )
    def test_malformed_specs_rejected(self, spec):
        with pytest.raises(FaultSpecError):
            parse_fault_spec(spec)

    def test_env_plan(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        assert fault_plan_from_env() is None
        monkeypatch.setenv(ENV_VAR, "  ")
        assert fault_plan_from_env() is None
        monkeypatch.setenv(ENV_VAR, "seed=9,crash=0.25")
        plan = fault_plan_from_env()
        assert plan is not None and plan.crash_rate == 0.25

    def test_env_plan_reaches_scheduler_and_simulator(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "seed=4,slow=0.5,slow_seconds=0.001")
        scheduler = ProcessScheduler(max_workers=2)
        assert scheduler._fault_plan is not None
        assert scheduler._fault_plan.slow_rate == 0.5


# ----------------------------------------------------------------------
# ProcessScheduler recovery: the differential contract under faults
# ----------------------------------------------------------------------
def assert_identical(reference, candidate):
    assert (
        candidate.fixing.assignment.as_dict()
        == reference.fixing.assignment.as_dict()
    )
    assert candidate.fixing.steps == reference.fixing.steps
    assert (
        candidate.fixing.certified_bounds
        == reference.fixing.certified_bounds
    )


class TestProcessSchedulerRecovery:
    @pytest.fixture
    def rank2_instance(self):
        return all_zero_edge_instance(cycle_graph(14), 3)

    @pytest.fixture
    def rank3_instance(self):
        return all_zero_triple_instance(11, cyclic_triples(11), 5)

    def solve(self, instance, scheduler):
        return solve_distributed(instance, scheduler=scheduler)

    def test_crash_recovery_is_bit_identical(self, rank2_instance):
        reference = self.solve(rank2_instance, SerialScheduler())
        plan = FaultPlan(explicit_chunks=((0, "crash"),))
        with recording() as recorder:
            candidate = self.solve(
                rank2_instance, fast_process_scheduler(fault_plan=plan)
            )
            events = list(recorder.memory.events)
        assert_identical(reference, candidate)
        kinds = {
            e["event"] for e in events if e["component"] == "runtime"
        }
        assert "fault" in kinds and "retry" in kinds
        assert certify_recovery(events) == []

    def test_hang_recovery_is_bit_identical(self, rank2_instance):
        reference = self.solve(rank2_instance, SerialScheduler())
        plan = FaultPlan(
            explicit_chunks=((1, "hang"),), hang_seconds=10.0
        )
        with recording() as recorder:
            candidate = self.solve(
                rank2_instance,
                fast_process_scheduler(fault_plan=plan, deadline=1.0),
            )
            events = list(recorder.memory.events)
        assert_identical(reference, candidate)
        faults = [
            e for e in events
            if e["component"] == "runtime" and e["event"] == "fault"
        ]
        assert any(e["payload"]["kind"] == "deadline" for e in faults)
        assert certify_recovery(events) == []

    def test_rank3_crash_and_slow_mix(self, rank3_instance):
        reference = self.solve(rank3_instance, SerialScheduler())
        plan = FaultPlan(
            seed=2,
            explicit_chunks=((0, "crash"),),
            slow_rate=0.5,
            slow_seconds=0.001,
        )
        candidate = self.solve(
            rank3_instance, fast_process_scheduler(fault_plan=plan)
        )
        assert_identical(reference, candidate)

    def test_persistent_crash_falls_back_in_parent(self, rank2_instance):
        reference = self.solve(rank2_instance, SerialScheduler())
        plan = FaultPlan(crash_rate=1.0)
        with recording() as recorder:
            candidate = self.solve(
                rank2_instance,
                fast_process_scheduler(fault_plan=plan, max_retries=1),
            )
            events = list(recorder.memory.events)
        assert_identical(reference, candidate)
        fallbacks = [
            e for e in events
            if e["component"] == "runtime" and e["event"] == "fallback"
        ]
        assert fallbacks, "expected the in-parent fallback to engage"
        assert certify_recovery(events) == []

    def test_garbled_reply_raises_protocol_error(self, rank2_instance):
        plan = FaultPlan(explicit_chunks=((0, "garble"),))
        with pytest.raises(SchedulerProtocolError) as excinfo:
            self.solve(
                rank2_instance, fast_process_scheduler(fault_plan=plan)
            )
        assert "choices" in str(excinfo.value)

    def test_fault_free_path_unchanged(self, rank2_instance):
        reference = self.solve(rank2_instance, SerialScheduler())
        candidate = self.solve(rank2_instance, fast_process_scheduler())
        assert_identical(reference, candidate)

    def test_max_workers_none_resolves_to_cpu_count(self):
        scheduler = ProcessScheduler()
        assert scheduler._num_workers >= 1

    def test_invalid_max_workers_rejected(self):
        with pytest.raises(ReproError):
            ProcessScheduler(max_workers=0)

    def test_audit_certifies_post_recovery_transcript(self, rank2_instance):
        plan = FaultPlan(explicit_chunks=((0, "crash"),))
        with recording() as recorder:
            candidate = self.solve(
                rank2_instance, fast_process_scheduler(fault_plan=plan)
            )
            events = list(recorder.memory.events)
        report = run_audit(rank2_instance, candidate, fault_events=events)
        assert report.ok, report.problems


# ----------------------------------------------------------------------
# Simulator message faults: reliable delivery, identical transcripts
# ----------------------------------------------------------------------
class TestSimulatorMessageFaults:
    @pytest.fixture
    def instance(self):
        return all_zero_triple_instance(9, cyclic_triples(9), 5)

    def test_drop_and_duplicate_recover_exactly(self, instance):
        baseline = solve_distributed_local(instance)
        plan = FaultPlan(seed=3, drop_rate=0.3, duplicate_rate=0.3)
        with recording() as recorder:
            faulted = solve_distributed_local(instance, fault_plan=plan)
            events = list(recorder.memory.events)
        assert (
            faulted.fixing.assignment.as_dict()
            == baseline.fixing.assignment.as_dict()
        )
        assert faulted.fixing.steps == baseline.fixing.steps
        # Message accounting is part of the transcript: the reliable
        # delivery layer must not change what the algorithm observed.
        assert faulted.round_messages == baseline.round_messages
        assert faulted.schedule_rounds == baseline.schedule_rounds
        runtime = [e for e in events if e["component"] == "runtime"]
        assert any(e["event"] == "fault" for e in runtime)
        assert certify_recovery(events) == []
        assert run_audit(instance, faulted, fault_events=events).ok

    def test_exhausted_redelivery_raises_typed_error(self, instance):
        plan = FaultPlan(seed=1, drop_rate=1.0, max_redelivery=2)
        with pytest.raises(FaultRecoveryError) as excinfo:
            solve_distributed_local(instance, fault_plan=plan)
        message = str(excinfo.value)
        assert "dropped" in message and "redelivery" in message

    def test_batched_simulator_recovers_exactly(self):
        import numpy as np

        from repro.graph.batched import BatchedSimulator
        from repro.graph.coloring import GreedyReductionArrayAlgorithm
        from repro.graph.csr import CSRGraph
        from repro.generators import random_regular_graph

        graph = random_regular_graph(16, 4, seed=3)
        csr = CSRGraph.from_networkx(graph)
        inputs = np.arange(16)

        def algorithm():
            return GreedyReductionArrayAlgorithm(16, 5, 4)

        baseline = BatchedSimulator(
            csr, algorithm(), inputs=inputs, record_trace=True
        ).run()
        plan = FaultPlan(seed=9, drop_rate=0.2, duplicate_rate=0.2)
        with recording() as recorder:
            faulted = BatchedSimulator(
                csr,
                algorithm(),
                inputs=inputs,
                record_trace=True,
                fault_plan=plan,
            ).run()
            events = list(recorder.memory.events)
        assert faulted.outputs == baseline.outputs
        assert faulted.trace == baseline.trace
        assert faulted.round_messages == baseline.round_messages
        assert certify_recovery(events) == []

        dead = FaultPlan(seed=2, drop_rate=1.0, max_redelivery=1)
        with pytest.raises(FaultRecoveryError):
            BatchedSimulator(
                csr, algorithm(), inputs=inputs, fault_plan=dead
            ).run()


# ----------------------------------------------------------------------
# Recovery certification over event streams
# ----------------------------------------------------------------------
def _event(event_kind, **payload):
    return {
        "run_id": "r",
        "seq": 0,
        "ts_ns": 0,
        "component": "runtime",
        "event": event_kind,
        "payload": payload,
    }


class TestCertifyRecovery:
    def test_empty_stream_certifies(self):
        assert certify_recovery([]) == []

    def test_dangling_fault_reported(self):
        problems = certify_recovery(
            [_event("fault", scope="chunk:0", kind="worker-death")]
        )
        assert len(problems) == 1
        assert "chunk:0" in problems[0]

    def test_retry_recovery_closes_fault(self):
        events = [
            _event("fault", scope="chunk:0", kind="deadline"),
            _event("retry", scope="chunk:0", outcome="resubmitted"),
            _event("retry", scope="chunk:0", outcome="recovered"),
        ]
        assert certify_recovery(events) == []

    def test_fallback_closes_fault(self):
        events = [
            _event("fault", scope="chunk:1", kind="worker-death"),
            _event("fallback", scope="chunk:1", reason="retries exhausted"),
        ]
        assert certify_recovery(events) == []

    def test_self_healing_fault(self):
        events = [
            _event(
                "fault",
                scope="msg:1:0",
                kind="message_duplicate",
                recovered=True,
            )
        ]
        assert certify_recovery(events) == []

    def test_unrelated_events_ignored(self):
        events = [
            {
                "run_id": "r",
                "seq": 0,
                "ts_ns": 0,
                "component": "simulator",
                "event": "fault",
                "payload": {"scope": "x"},
            },
            _event("fault", kind="no-scope"),
        ]
        assert certify_recovery(events) == []


# ----------------------------------------------------------------------
# CLI integration
# ----------------------------------------------------------------------
class TestCliFaults:
    def test_faults_flag_with_process_scheduler(self, capsys):
        from repro.cli import main

        code = main(
            [
                "solve",
                "--family",
                "cycle",
                "--n",
                "10",
                "--scheduler",
                "process",
                "--faults",
                "seed=5,crash@0",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "fault plan" in out

    def test_faults_flag_requires_fault_aware_backend(self, capsys):
        from repro.cli import main

        code = main(
            [
                "solve",
                "--family",
                "cycle",
                "--n",
                "10",
                "--faults",
                "crash=0.5",
            ]
        )
        assert code != 0

    def test_malformed_spec_is_a_clean_error(self, capsys):
        from repro.cli import main

        code = main(
            [
                "solve",
                "--family",
                "cycle",
                "--n",
                "10",
                "--scheduler",
                "process",
                "--faults",
                "explode=1",
            ]
        )
        assert code != 0
