"""Unit tests for the rank-3 hypergraph sinkless orientation application."""

import pytest

from repro.errors import ReproError
from repro.applications import (
    hypergraph_sinkless_instance,
    orientations_from_assignment,
)
from repro.applications.hypergraph_sinkless import (
    NUM_ORIENTATIONS,
    satisfies_requirement,
    sink_counts,
)
from repro.core import solve, solve_distributed
from repro.generators import cyclic_triples, partition_rounds_triples
from repro.lll import check_preconditions, verify_solution


class TestInstanceConstruction:
    def test_rank_is_three(self):
        instance = hypergraph_sinkless_instance(9, cyclic_triples(9))
        assert instance.rank == 3

    def test_variable_support_is_27(self):
        instance = hypergraph_sinkless_instance(9, cyclic_triples(9))
        assert all(v.num_values == 27 for v in instance.variables)

    def test_probability_formula(self):
        # A node in t triples is a sink in a fixed orientation with
        # probability 3^-t; "sink in >= 2 of 3" by inclusion-exclusion:
        # 3 * 9^-t - 2 * 27^-t.
        instance = hypergraph_sinkless_instance(9, cyclic_triples(9))
        t = 3
        expected = 3 * 9.0**-t - 2 * 27.0**-t
        assert instance.max_event_probability == pytest.approx(expected)

    def test_below_threshold(self):
        instance = hypergraph_sinkless_instance(12, cyclic_triples(12))
        report = check_preconditions(instance, max_rank=3)
        assert report.p < report.threshold

    def test_repeated_triple_rejected(self):
        with pytest.raises(ReproError):
            hypergraph_sinkless_instance(6, [(0, 1, 2), (2, 1, 0)])

    def test_degenerate_triple_rejected(self):
        with pytest.raises(ReproError):
            hypergraph_sinkless_instance(6, [(0, 1, 1)])

    def test_uncovered_node_rejected(self):
        with pytest.raises(ReproError):
            hypergraph_sinkless_instance(7, [(0, 1, 2), (3, 4, 5)])


class TestSolving:
    def test_deterministic_fixer_solves(self):
        triples = cyclic_triples(12)
        instance = hypergraph_sinkless_instance(12, triples)
        result = solve(instance)
        assert verify_solution(instance, result.assignment).ok
        orientations = orientations_from_assignment(triples, result.assignment)
        assert len(orientations) == NUM_ORIENTATIONS
        assert satisfies_requirement(12, triples, orientations)

    def test_distributed_solves(self):
        triples = cyclic_triples(12)
        instance = hypergraph_sinkless_instance(12, triples)
        result = solve_distributed(instance)
        orientations = orientations_from_assignment(triples, result.assignment)
        assert satisfies_requirement(12, triples, orientations)

    def test_partition_workload(self):
        triples = partition_rounds_triples(18, 2, seed=4)
        instance = hypergraph_sinkless_instance(18, triples)
        result = solve(instance, require_criterion="local")
        orientations = orientations_from_assignment(triples, result.assignment)
        assert satisfies_requirement(18, triples, orientations)


class TestDomainChecks:
    def test_sink_counts_all_heads_to_one_node(self):
        triples = [(0, 1, 2)]
        orientations = [
            {(0, 1, 2): 0},
            {(0, 1, 2): 0},
            {(0, 1, 2): 1},
        ]
        counts = sink_counts(3, triples, orientations)
        assert counts[0] == 2  # sink in orientations 0 and 1
        assert counts[1] == 1
        assert counts[2] == 0
        assert not satisfies_requirement(3, triples, orientations)

    def test_requirement_satisfied_when_spread(self):
        triples = [(0, 1, 2)]
        orientations = [
            {(0, 1, 2): 0},
            {(0, 1, 2): 1},
            {(0, 1, 2): 2},
        ]
        assert satisfies_requirement(3, triples, orientations)
