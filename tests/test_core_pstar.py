"""Unit tests for the property-P* bookkeeping state (Definition 3.1)."""

import pytest

from repro.errors import PStarViolationError
from repro.core import PStarState
from repro.probability import PartialAssignment


@pytest.fixture
def state(small_rank3_instance):
    return PStarState(small_rank3_instance)


class TestInitialState:
    def test_all_values_start_at_one(self, state, small_rank3_instance):
        graph = small_rank3_instance.dependency_graph
        for u, v in graph.edges():
            assert state.value(u, v, u) == 1.0
            assert state.value(u, v, v) == 1.0

    def test_initial_node_product(self, state, small_rank3_instance):
        for event in small_rank3_instance.events:
            assert state.node_product(event.name) == 1.0

    def test_initial_bound_is_p(self, state, small_rank3_instance):
        for event in small_rank3_instance.events:
            assert state.certified_bound(event.name) == pytest.approx(
                event.probability()
            )

    def test_initial_check_passes(self, state):
        state.check(PartialAssignment())


class TestEdgeUpdates:
    def test_set_and_read(self, state, small_rank3_instance):
        u, v = next(iter(small_rank3_instance.dependency_graph.edges()))
        state.set_edge(u, v, 1.5, 0.5)
        assert state.value(u, v, u) == 1.5
        assert state.value(u, v, v) == 0.5

    def test_sum_violation_rejected(self, state, small_rank3_instance):
        u, v = next(iter(small_rank3_instance.dependency_graph.edges()))
        with pytest.raises(PStarViolationError):
            state.set_edge(u, v, 1.5, 0.6)

    def test_range_violation_rejected(self, state, small_rank3_instance):
        u, v = next(iter(small_rank3_instance.dependency_graph.edges()))
        with pytest.raises(PStarViolationError):
            state.set_edge(u, v, 2.5, 0.0)
        with pytest.raises(PStarViolationError):
            state.set_edge(u, v, -0.5, 0.5)

    def test_tolerance_clamping(self, state, small_rank3_instance):
        u, v = next(iter(small_rank3_instance.dependency_graph.edges()))
        state.set_edge(u, v, 1.0 + 1e-9, 1.0 + 1e-9)
        assert state.value(u, v, u) + state.value(u, v, v) <= 2.0

    def test_unknown_edge_rejected(self, state):
        with pytest.raises(PStarViolationError):
            state.set_edge("nope", "nada", 1.0, 1.0)

    def test_wrong_side_rejected(self, state, small_rank3_instance):
        u, v = next(iter(small_rank3_instance.dependency_graph.edges()))
        with pytest.raises(PStarViolationError):
            state.value(u, v, "stranger")

    def test_node_product_reflects_updates(self, state, small_rank3_instance):
        graph = small_rank3_instance.dependency_graph
        node = next(iter(graph.nodes()))
        neighbors = list(graph.neighbors(node))
        state.set_edge(node, neighbors[0], 2.0, 0.0)
        expected = 2.0  # other edges still 1.0
        assert state.node_product(node) == pytest.approx(expected)


class TestCheck:
    def test_check_detects_probability_violation(
        self, state, small_rank3_instance
    ):
        # Zero out every phi on one node's side: bound becomes 0 < Pr.
        graph = small_rank3_instance.dependency_graph
        node = next(iter(graph.nodes()))
        for neighbor in graph.neighbors(node):
            state.set_edge(node, neighbor, 0.0, 1.0)
        with pytest.raises(PStarViolationError):
            state.check(PartialAssignment())

    def test_snapshot_is_flat_copy(self, state):
        snapshot = state.snapshot()
        assert all(value == 1.0 for value in snapshot.values())
        # Mutating the snapshot does not touch the state.
        key = next(iter(snapshot))
        snapshot[key] = 99.0
        edge_key, side = key
        u, v = tuple(edge_key)
        assert state.value(u, v, side) == 1.0

    def test_initial_probabilities_copy(self, state):
        probabilities = state.initial_probabilities
        name = next(iter(probabilities))
        probabilities[name] = 42.0
        assert state.initial_probabilities[name] != 42.0
