"""Unit and property tests for the shared value-selection rules."""

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import select_rank1, select_rank2, select_rank3
from repro.errors import NoGoodValueError
from repro.geometry import is_representable_triple
from repro.probability import BadEvent, DiscreteVariable, PartialAssignment


def _coins(count, prefix="c"):
    return [DiscreteVariable.fair_coin(f"{prefix}{i}") for i in range(count)]


class TestSelectRank1:
    def test_picks_probability_reducing_value(self):
        coins = _coins(3)
        event = BadEvent.all_equal("E", coins, target=1)
        choice = select_rank1(coins[0], event, PartialAssignment())
        assert choice.value == 0
        assert choice.increase == 0.0
        assert choice.slack == 1.0

    def test_impossible_event_any_value(self):
        coins = _coins(2)
        event = BadEvent("E", coins, lambda values: False)
        choice = select_rank1(coins[0], event, PartialAssignment())
        assert choice.increase == 0.0
        assert choice.num_good_values == 2

    def test_certain_event_inc_stays_one(self):
        coins = _coins(1)
        event = BadEvent("E", coins, lambda values: True)
        choice = select_rank1(coins[0], event, PartialAssignment())
        assert choice.increase == pytest.approx(1.0)

    def test_respects_partial_assignment(self):
        coins = _coins(3)
        event = BadEvent.all_equal("E", coins, target=1)
        partial = PartialAssignment().fix(coins[1], 0)
        # Event already impossible: every value has Inc = 0.
        choice = select_rank1(coins[0], event, partial)
        assert choice.increase == 0.0


class TestSelectRank2:
    def test_weighted_budget_met(self):
        coins = _coins(4)
        event_u = BadEvent.all_equal("U", coins[:3], target=1)
        event_v = BadEvent.all_equal("V", coins[1:], target=1)
        shared = coins[1]
        choice = select_rank2(
            shared, [event_u, event_v], (1.0, 1.0), PartialAssignment()
        )
        total = choice.increases[0] + choice.increases[1]
        assert total <= 2.0 + 1e-9
        assert choice.new_weights[0] == pytest.approx(choice.increases[0])

    def test_skewed_weights(self):
        coins = _coins(3)
        event_u = BadEvent.all_equal("U", coins[:2], target=1)
        event_v = BadEvent.all_equal("V", coins[1:], target=1)
        choice = select_rank2(
            coins[1], [event_u, event_v], (1.8, 0.2), PartialAssignment()
        )
        weighted = 1.8 * choice.increases[0] + 0.2 * choice.increases[1]
        assert weighted <= 2.0 + 1e-9

    @given(
        st.floats(min_value=0.05, max_value=0.95),
        st.floats(min_value=0.0, max_value=2.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_budget_property(self, bias, weight_u):
        weight_v = 2.0 - weight_u
        shared = DiscreteVariable("s", (0, 1), (1.0 - bias, bias))
        other_u = DiscreteVariable.fair_coin("ou")
        other_v = DiscreteVariable.fair_coin("ov")
        event_u = BadEvent.all_equal("U", [shared, other_u], target=1)
        event_v = BadEvent.all_equal("V", [shared, other_v], target=1)
        choice = select_rank2(
            shared,
            [event_u, event_v],
            (weight_u, weight_v),
            PartialAssignment(),
        )
        weighted = (
            weight_u * choice.increases[0] + weight_v * choice.increases[1]
        )
        assert weighted <= 2.0 + 1e-9
        assert sum(choice.new_weights) <= 2.0 + 1e-9


class TestSelectRank3:
    def _triangle(self, alphabet=5):
        shared = DiscreteVariable("s", tuple(range(alphabet)))
        extras = [
            DiscreteVariable(f"e{i}", tuple(range(alphabet))) for i in range(3)
        ]
        events = [
            BadEvent.all_equal(name, [shared, extra], target=0)
            for name, extra in zip("UVW", extras)
        ]
        return shared, events

    def test_initial_triple_selection(self):
        shared, events = self._triangle()
        choice = select_rank3(
            shared, events, (1.0, 1.0, 1.0), PartialAssignment()
        )
        assert is_representable_triple(*choice.triple, tolerance=1e-7)
        assert choice.margin >= -1e-9
        assert choice.num_good_values >= 1

    def test_decomposition_matches_triple(self):
        shared, events = self._triangle()
        choice = select_rank3(
            shared, events, (0.9, 1.1, 0.8), PartialAssignment()
        )
        products = choice.decomposition.products()
        for product, target in zip(products, choice.triple):
            assert product >= target - 1e-7

    def test_boundary_triple_still_has_value(self):
        shared, events = self._triangle()
        # A triple on the boundary of S_rep: f(1, 1) = 1.
        choice = select_rank3(
            shared, events, (1.0, 1.0, 1.0), PartialAssignment()
        )
        assert choice.value in shared

    def test_raises_when_all_values_evil(self):
        # One fair coin shared by three events that each occur iff the
        # coin is their way: impossible to keep all three triples inside
        # S_rep from the boundary triple (2, 2, 0)... construct a
        # genuinely evil situation: events equal to coin outcomes with
        # certainty.
        coin = DiscreteVariable.fair_coin("s")
        event_u = BadEvent("U", [coin], lambda v: v["s"] == 1)
        event_v = BadEvent("V", [coin], lambda v: v["s"] == 1)
        event_w = BadEvent("W", [coin], lambda v: v["s"] == 0)
        # From (2, 2, 3.99): fixing either way doubles a >=2 coordinate
        # (sum a + b > 4) or pushes c above f.
        with pytest.raises(NoGoodValueError):
            select_rank3(
                coin,
                [event_u, event_v, event_w],
                (2.0, 2.0, 3.99),
                PartialAssignment(),
            )

    @given(st.integers(0, 10**6))
    @settings(max_examples=30, deadline=None)
    def test_random_triangles_property(self, seed):
        rng = random.Random(seed)
        alphabet = rng.choice((3, 4, 5))
        shared, events = self._triangle(alphabet)
        # Random representable starting triple via the characterisation.
        from repro.geometry import boundary_surface

        a = rng.uniform(0, 2.0)
        b = rng.uniform(0, min(2.0, 4.0 - a))
        c = rng.uniform(0, boundary_surface(a, b))
        choice = select_rank3(shared, events, (a, b, c), PartialAssignment())
        assert is_representable_triple(*choice.triple, tolerance=1e-6)
        decomposition = choice.decomposition
        for total in decomposition.edge_sums():
            assert total <= 2.0 + 1e-9
