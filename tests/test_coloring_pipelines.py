"""Unit tests for the end-to-end coloring pipelines."""

import pytest

from repro.errors import ColoringError
from repro.coloring import (
    VIRTUAL_ROUND_FACTOR,
    compute_edge_coloring,
    compute_two_hop_coloring,
    compute_vertex_coloring,
    is_proper_edge_coloring,
    is_proper_vertex_coloring,
    is_two_hop_coloring,
)
from repro.generators import (
    cycle_graph,
    grid_graph,
    random_regular_graph,
    random_tree,
)
from repro.local_model import Network


class TestVertexPipeline:
    @pytest.mark.parametrize(
        "graph_factory",
        [
            lambda: cycle_graph(40),
            lambda: random_regular_graph(40, 4, seed=1),
            lambda: random_tree(40, seed=2),
            lambda: grid_graph(5, 8),
        ],
    )
    def test_proper_with_default_target(self, graph_factory):
        graph = graph_factory()
        network = Network(graph)
        result = compute_vertex_coloring(network)
        assert is_proper_vertex_coloring(graph, result.colors)
        assert result.palette == network.max_degree + 1
        assert result.num_colors_used <= result.palette

    def test_explicit_target(self):
        graph = cycle_graph(30)
        result = compute_vertex_coloring(Network(graph), target=5)
        assert max(result.colors.values()) < 5

    def test_target_below_degree_rejected(self):
        graph = random_regular_graph(20, 4, seed=0)
        with pytest.raises(ColoringError):
            compute_vertex_coloring(Network(graph), target=4)

    def test_unknown_reduction_rejected(self):
        graph = cycle_graph(10)
        with pytest.raises(ColoringError):
            compute_vertex_coloring(Network(graph), reduction="magic")

    def test_greedy_and_kw_agree_on_properness(self):
        graph = random_regular_graph(30, 3, seed=3)
        for reduction in ("kw", "greedy"):
            result = compute_vertex_coloring(Network(graph), reduction=reduction)
            assert is_proper_vertex_coloring(graph, result.colors)

    def test_total_rounds_sum(self):
        graph = cycle_graph(100)
        result = compute_vertex_coloring(Network(graph))
        assert result.total_rounds == (
            result.linial_rounds + result.reduction_rounds
        )

    def test_log_star_shape_in_n(self):
        # Past the Linial fixpoint the total round count is flat in n.
        totals = [
            compute_vertex_coloring(Network(cycle_graph(n))).total_rounds
            for n in (200, 400, 800)
        ]
        assert totals[1] == totals[2]


class TestEdgePipeline:
    def test_proper_edge_coloring(self):
        graph = random_regular_graph(24, 4, seed=4)
        result = compute_edge_coloring(Network(graph))
        assert is_proper_edge_coloring(graph, result.colors)
        # Default target: line-graph degree + 1 = 2d - 1.
        assert result.palette <= 2 * 4 - 1

    def test_host_round_accounting(self):
        graph = cycle_graph(20)
        result = compute_edge_coloring(Network(graph))
        assert result.host_rounds == VIRTUAL_ROUND_FACTOR * result.virtual_rounds

    def test_path_graph_edges(self):
        import networkx as nx

        graph = nx.path_graph(10)
        result = compute_edge_coloring(Network(graph))
        assert is_proper_edge_coloring(graph, result.colors)


class TestTwoHopPipeline:
    def test_two_hop_coloring(self):
        graph = random_regular_graph(30, 3, seed=5)
        result = compute_two_hop_coloring(Network(graph))
        assert is_two_hop_coloring(graph, result.colors)
        assert result.palette <= 3 * 3 + 1

    def test_cycle_two_hop(self):
        graph = cycle_graph(25)
        result = compute_two_hop_coloring(Network(graph))
        assert is_two_hop_coloring(graph, result.colors)
        # G^2 of a long cycle is 4-regular: palette 5.
        assert result.palette == 5

    def test_host_round_accounting(self):
        graph = cycle_graph(20)
        result = compute_two_hop_coloring(Network(graph))
        assert result.host_rounds == VIRTUAL_ROUND_FACTOR * result.virtual_rounds


class TestValidators:
    def test_vertex_validator_rejects_improper(self):
        graph = cycle_graph(4)
        colors = {0: 0, 1: 0, 2: 1, 3: 2}
        assert not is_proper_vertex_coloring(graph, colors)

    def test_vertex_validator_rejects_missing(self):
        graph = cycle_graph(4)
        assert not is_proper_vertex_coloring(graph, {0: 0, 1: 1})

    def test_edge_validator_rejects_shared_endpoint(self):
        graph = cycle_graph(4)
        colors = {(0, 1): 0, (1, 2): 0, (2, 3): 1, (0, 3): 1}
        assert not is_proper_edge_coloring(graph, colors)

    def test_two_hop_validator_rejects_distance_two(self):
        import networkx as nx

        graph = nx.path_graph(3)
        colors = {0: 0, 1: 1, 2: 0}  # proper, but 0 and 2 are 2 apart
        assert is_proper_vertex_coloring(graph, colors)
        assert not is_two_hop_coloring(graph, colors)
