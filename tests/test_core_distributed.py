"""Unit tests for the distributed algorithms (Corollaries 1.2 and 1.4)."""

import pytest

from repro.analysis import log_star, rank2_schedule_bound, rank3_schedule_bound
from repro.core import (
    solve_distributed,
    solve_distributed_rank2,
    solve_distributed_rank3,
)
from repro.generators import (
    all_zero_edge_instance,
    all_zero_triple_instance,
    cycle_graph,
    cyclic_triples,
    partition_rounds_triples,
    random_regular_graph,
    torus_graph,
)
from repro.lll import verify_solution


class TestRank2Distributed:
    def test_solves_cycle(self):
        instance = all_zero_edge_instance(cycle_graph(16), 3)
        result = solve_distributed_rank2(instance)
        assert verify_solution(instance, result.assignment).ok

    def test_solves_regular(self):
        instance = all_zero_edge_instance(
            random_regular_graph(24, 3, seed=5), 3
        )
        result = solve_distributed_rank2(instance)
        assert verify_solution(instance, result.assignment).ok

    def test_schedule_rounds_bounded_by_palette(self):
        instance = all_zero_edge_instance(cycle_graph(16), 3)
        result = solve_distributed_rank2(instance)
        # No rank-1 variables here: schedule rounds = palette size.
        assert result.schedule_rounds == result.palette
        d = instance.max_dependency_degree
        assert result.palette <= rank2_schedule_bound(d)

    def test_rounds_flat_in_n(self):
        totals = []
        for n in (32, 128, 512):
            instance = all_zero_edge_instance(cycle_graph(n), 3)
            result = solve_distributed_rank2(instance)
            assert verify_solution(instance, result.assignment).ok
            totals.append(result.total_rounds)
        # log* n is constant over this range, so rounds must plateau.
        assert totals[-1] == totals[-2]

    def test_invariant_validation_mode(self):
        instance = all_zero_edge_instance(cycle_graph(10), 3)
        result = solve_distributed_rank2(instance, validate_invariant=True)
        assert verify_solution(instance, result.assignment).ok


class TestRank3Distributed:
    def test_solves_cyclic_triples(self):
        instance = all_zero_triple_instance(12, cyclic_triples(12), 5)
        result = solve_distributed_rank3(instance)
        assert verify_solution(instance, result.assignment).ok

    def test_solves_partition_rounds(self):
        triples = partition_rounds_triples(18, 2, seed=1)
        instance = all_zero_triple_instance(18, triples, 5)
        result = solve_distributed_rank3(instance)
        assert verify_solution(instance, result.assignment).ok

    def test_schedule_bounded_by_d_squared(self):
        instance = all_zero_triple_instance(12, cyclic_triples(12), 5)
        result = solve_distributed_rank3(instance)
        d = instance.max_dependency_degree
        assert result.schedule_rounds <= rank3_schedule_bound(d)

    def test_rounds_flat_in_n(self):
        # The plateau starts once the identifier space exceeds the Linial
        # fixpoint of G^2 (~289 for d = 4): doubling n beyond that point
        # leaves the round count unchanged.
        totals = []
        for n in (324, 648):
            instance = all_zero_triple_instance(n, cyclic_triples(n), 5)
            result = solve_distributed_rank3(instance)
            assert verify_solution(instance, result.assignment).ok
            totals.append(result.total_rounds)
        assert totals[0] == totals[1]

    def test_invariant_validation_mode(self):
        instance = all_zero_triple_instance(9, cyclic_triples(9), 5)
        result = solve_distributed_rank3(instance, validate_invariant=True)
        assert verify_solution(instance, result.assignment).ok


class TestDispatch:
    def test_rank2_dispatch(self):
        instance = all_zero_edge_instance(torus_graph(3, 4), 3)
        result = solve_distributed(instance)
        assert verify_solution(instance, result.assignment).ok

    def test_rank3_dispatch(self):
        instance = all_zero_triple_instance(9, cyclic_triples(9), 5)
        result = solve_distributed(instance)
        assert verify_solution(instance, result.assignment).ok

    def test_total_rounds_sums_phases(self):
        instance = all_zero_edge_instance(cycle_graph(12), 3)
        result = solve_distributed(instance)
        assert result.total_rounds == (
            result.coloring_rounds + result.schedule_rounds
        )


class TestRank1Handling:
    def test_rank1_variables_get_one_round(self):
        from repro.lll import LLLInstance
        from repro.probability import BadEvent, DiscreteVariable

        # Two independent events, each with private coins: all variables
        # are rank 1, so the schedule is a single round and no coloring.
        events = []
        for label in ("A", "B"):
            coins = [
                DiscreteVariable.fair_coin(f"{label}{i}") for i in range(3)
            ]
            events.append(BadEvent.all_equal(label, coins, target=1))
        instance = LLLInstance(events)
        result = solve_distributed_rank2(instance)
        assert verify_solution(instance, result.assignment).ok
        assert result.coloring_rounds == 0
        assert result.schedule_rounds == 1
