"""Unit tests for the exception hierarchy."""

import pytest

from repro import errors


class TestHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        subclasses = [
            errors.InvalidDistributionError,
            errors.UnknownVariableError,
            errors.InvalidAssignmentError,
            errors.EnumerationLimitError,
            errors.CriterionViolationError,
            errors.RankViolationError,
            errors.NoGoodValueError,
            errors.NotRepresentableError,
            errors.PStarViolationError,
            errors.AlgorithmFailedError,
            errors.SimulationError,
            errors.ColoringError,
        ]
        for subclass in subclasses:
            assert issubclass(subclass, errors.ReproError)

    def test_catching_the_base_catches_library_failures(self):
        from repro.generators import all_zero_edge_instance, cycle_graph
        from repro.core import solve

        with pytest.raises(errors.ReproError):
            solve(all_zero_edge_instance(cycle_graph(6), 2))  # at threshold

    def test_base_does_not_swallow_programming_errors(self):
        assert not issubclass(TypeError, errors.ReproError)
        assert not issubclass(errors.ReproError, TypeError)
