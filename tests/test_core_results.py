"""Unit tests for the result record types."""

import math

import pytest

from repro.core.results import FixingResult, StepRecord
from repro.probability import PartialAssignment


def _step(variable, slack=0.5, good=2, total=3):
    return StepRecord(
        variable=variable,
        value=0,
        events=("E",),
        increases=(1.0,),
        slack=slack,
        num_good_values=good,
        num_values=total,
    )


class TestFixingResult:
    def test_num_steps(self):
        result = FixingResult(
            assignment=PartialAssignment(),
            steps=(_step("a"), _step("b")),
            certified_bounds={"E": 0.5},
        )
        assert result.num_steps == 2

    def test_min_slack(self):
        result = FixingResult(
            assignment=PartialAssignment(),
            steps=(_step("a", slack=0.7), _step("b", slack=0.1)),
            certified_bounds={},
        )
        assert result.min_slack == pytest.approx(0.1)

    def test_min_slack_empty(self):
        result = FixingResult(
            assignment=PartialAssignment(), steps=(), certified_bounds={}
        )
        assert result.min_slack == math.inf

    def test_max_certified_bound(self):
        result = FixingResult(
            assignment=PartialAssignment(),
            steps=(),
            certified_bounds={"E": 0.25, "F": 0.75},
        )
        assert result.max_certified_bound == 0.75

    def test_max_certified_bound_empty(self):
        result = FixingResult(
            assignment=PartialAssignment(), steps=(), certified_bounds={}
        )
        assert result.max_certified_bound == 0.0

    def test_good_value_fraction(self):
        result = FixingResult(
            assignment=PartialAssignment(),
            steps=(_step("a", good=3, total=3), _step("b", good=1, total=2)),
            certified_bounds={},
        )
        assert result.good_value_fraction == pytest.approx((1.0 + 0.5) / 2)

    def test_good_value_fraction_empty(self):
        result = FixingResult(
            assignment=PartialAssignment(), steps=(), certified_bounds={}
        )
        assert result.good_value_fraction == 1.0

    def test_step_record_is_frozen(self):
        step = _step("a")
        with pytest.raises(AttributeError):
            step.slack = 1.0
