"""Unit tests for repro.lll.verify."""

import pytest

from repro.errors import CriterionViolationError, RankViolationError
from repro.lll import check_preconditions, verify_solution
from repro.probability import PartialAssignment
from repro.generators import all_zero_edge_instance, cycle_graph


@pytest.fixture
def instance():
    return all_zero_edge_instance(cycle_graph(6), 3)


class TestVerifySolution:
    def test_incomplete_assignment(self, instance):
        result = verify_solution(instance, PartialAssignment())
        assert not result.ok
        assert not result.complete
        assert len(result.unfixed) == instance.num_variables

    def test_valid_solution(self, instance):
        assignment = PartialAssignment()
        for variable in instance.variables:
            assignment.fix(variable, 1)
        result = verify_solution(instance, assignment)
        assert result.ok
        assert bool(result)
        assert result.occurring == ()

    def test_bad_solution_lists_events(self, instance):
        assignment = PartialAssignment()
        for variable in instance.variables:
            assignment.fix(variable, 0)
        result = verify_solution(instance, assignment)
        assert result.complete
        assert not result.ok
        assert len(result.occurring) == instance.num_events


class TestCheckPreconditions:
    def test_report_fields(self, instance):
        report = check_preconditions(instance, max_rank=2)
        assert report.p == pytest.approx(1 / 9)
        assert report.d == 2
        assert report.rank == 2
        assert report.threshold == pytest.approx(0.25)
        assert report.slack == pytest.approx(0.25 * 9)

    def test_rank_violation(self, instance):
        with pytest.raises(RankViolationError):
            check_preconditions(instance, max_rank=1)

    def test_criterion_violation(self):
        # Alphabet 2 on a cycle: p = 1/4 = 2^-d exactly -> strict check fails.
        at_threshold = all_zero_edge_instance(cycle_graph(6), 2)
        with pytest.raises(CriterionViolationError):
            check_preconditions(at_threshold)

    def test_criterion_check_can_be_disabled(self):
        at_threshold = all_zero_edge_instance(cycle_graph(6), 2)
        report = check_preconditions(at_threshold, require_criterion=False)
        assert report.p == pytest.approx(0.25)

    def test_zero_probability_slack_is_infinite(self):
        from repro.lll import LLLInstance
        from repro.probability import BadEvent, DiscreteVariable

        coin = DiscreteVariable.fair_coin("c")
        impossible = BadEvent("E", [coin], lambda values: False)
        instance = LLLInstance([impossible])
        report = check_preconditions(instance)
        assert report.slack == float("inf")
