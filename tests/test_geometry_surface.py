"""Unit tests for repro.geometry.surface (Lemmas 3.5 and 3.6)."""

import math
import random

import pytest

from repro.errors import ReproError
from repro.geometry import (
    boundary_surface,
    gradient,
    hessian,
    hessian_minors,
    in_domain,
    is_convex_at,
    numerical_gradient,
    surface_alternative_form,
    surface_grid,
)


class TestBoundaryValues:
    def test_corner_values(self):
        assert boundary_surface(0, 0) == pytest.approx(4.0)
        assert boundary_surface(4, 0) == pytest.approx(0.0)
        assert boundary_surface(0, 4) == pytest.approx(0.0)

    def test_axis_formula(self):
        # f(0, b) = 4 - b (from the proof of Lemma 3.5).
        for b in (0.5, 1.0, 2.5, 3.9):
            assert boundary_surface(0, b) == pytest.approx(4.0 - b)
            assert boundary_surface(b, 0) == pytest.approx(4.0 - b)

    def test_diagonal_formula(self):
        # f(a, a) = (2 - a)^2 (from the proof of Lemma 3.5).
        for a in (0.1, 0.7, 1.0, 1.5, 2.0):
            assert boundary_surface(a, a) == pytest.approx((2.0 - a) ** 2)

    def test_zero_on_boundary_line(self):
        # f vanishes on a + b = 4.
        for a in (0.5, 1.0, 2.0, 3.5):
            assert boundary_surface(a, 4.0 - a) == pytest.approx(0.0, abs=1e-9)

    def test_figure2_compatible_value(self):
        # The Figure 2 triple (1/4, 3/2, 1/10) requires f(1/4, 3/2) >= 1/10.
        assert boundary_surface(0.25, 1.5) >= 0.1

    def test_range(self):
        rng = random.Random(0)
        for _ in range(500):
            a = rng.uniform(0, 4)
            b = rng.uniform(0, 4 - a)
            value = boundary_surface(a, b)
            assert 0.0 <= value <= 4.0

    def test_symmetry(self):
        rng = random.Random(1)
        for _ in range(200):
            a = rng.uniform(0, 4)
            b = rng.uniform(0, 4 - a)
            assert boundary_surface(a, b) == pytest.approx(
                boundary_surface(b, a)
            )

    def test_monotone_decreasing(self):
        # Larger coordinates leave less room for c.
        assert boundary_surface(1, 1) > boundary_surface(1.5, 1)
        assert boundary_surface(1, 1) > boundary_surface(1, 1.5)

    def test_domain_violation_raises(self):
        with pytest.raises(ReproError):
            boundary_surface(3, 3)
        with pytest.raises(ReproError):
            boundary_surface(-1, 0)

    def test_tiny_excursions_clamped(self):
        assert boundary_surface(-1e-12, 1.0) == pytest.approx(3.0)
        assert boundary_surface(2.0 + 5e-10, 2.0) == pytest.approx(0.0, abs=1e-6)


class TestAlternativeForm:
    def test_forms_agree(self):
        rng = random.Random(2)
        for _ in range(500):
            a = rng.uniform(0, 4)
            b = rng.uniform(0, 4 - a)
            assert boundary_surface(a, b) == pytest.approx(
                surface_alternative_form(a, b), abs=1e-12
            )


class TestDerivatives:
    def test_gradient_matches_numeric(self):
        rng = random.Random(3)
        for _ in range(100):
            a = rng.uniform(0.2, 3.0)
            b = rng.uniform(0.2, min(3.0, 3.8 - a))
            closed = gradient(a, b)
            numeric = numerical_gradient(a, b)
            assert closed[0] == pytest.approx(numeric[0], abs=1e-4)
            assert closed[1] == pytest.approx(numeric[1], abs=1e-4)

    def test_gradient_boundary_raises(self):
        with pytest.raises(ReproError):
            gradient(0, 1)

    def test_hessian_is_symmetric(self):
        ((faa, fab), (fba, fbb)) = hessian(1.0, 0.5)
        assert fab == fba

    def test_hessian_matches_numeric(self):
        a, b = 1.2, 0.8
        step = 1e-5
        ((faa, fab), (_, fbb)) = hessian(a, b)
        numeric_faa = (
            boundary_surface(a + step, b)
            - 2 * boundary_surface(a, b)
            + boundary_surface(a - step, b)
        ) / step**2
        assert faa == pytest.approx(numeric_faa, rel=1e-3)
        numeric_fab = (
            boundary_surface(a + step, b + step)
            - boundary_surface(a + step, b - step)
            - boundary_surface(a - step, b + step)
            + boundary_surface(a - step, b - step)
        ) / (4 * step**2)
        assert fab == pytest.approx(numeric_fab, rel=1e-3)


class TestConvexity:
    """Lemma 3.6: both leading principal minors are positive on the
    open domain, so f is convex."""

    def test_minors_positive_random_sample(self):
        rng = random.Random(4)
        for _ in range(1000):
            a = rng.uniform(1e-3, 3.99)
            b = rng.uniform(1e-3, 3.999 - a)
            first, second = hessian_minors(a, b)
            assert first > 0
            assert second > 0

    def test_is_convex_at(self):
        assert is_convex_at(1.0, 1.0)
        assert is_convex_at(0.01, 3.9)

    def test_midpoint_convexity_on_segments(self):
        rng = random.Random(5)
        for _ in range(300):
            a1 = rng.uniform(0, 4)
            b1 = rng.uniform(0, 4 - a1)
            a2 = rng.uniform(0, 4)
            b2 = rng.uniform(0, 4 - a2)
            mid = boundary_surface((a1 + a2) / 2, (b1 + b2) / 2)
            average = (boundary_surface(a1, b1) + boundary_surface(a2, b2)) / 2
            assert mid <= average + 1e-9


class TestGrid:
    def test_grid_covers_triangle(self):
        a_values, b_values, f_values = surface_grid(8)
        assert len(a_values) == len(b_values) == len(f_values)
        # Triangular count: sum_{i=0..8} (9 - i).
        assert len(a_values) == sum(9 - i for i in range(9))
        assert max(f_values) == pytest.approx(4.0)
        assert min(f_values) == pytest.approx(0.0, abs=1e-9)

    def test_grid_resolution_validation(self):
        with pytest.raises(ReproError):
            surface_grid(0)


class TestDomain:
    def test_in_domain(self):
        assert in_domain(1, 1)
        assert in_domain(0, 4)
        assert not in_domain(2.5, 2.5)
        assert not in_domain(-0.1, 1)
