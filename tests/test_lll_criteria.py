"""Unit tests for repro.lll.criteria."""

import math

import pytest

from repro.errors import CriterionViolationError
from repro.lll import (
    ExponentialCriterion,
    GHKCriterion,
    NaiveRankCriterion,
    PolynomialCriterion,
    SymmetricLLLCriterion,
    criterion_report,
)


class TestExponentialCriterion:
    def test_threshold(self):
        criterion = ExponentialCriterion()
        assert criterion.threshold(0) == 1.0
        assert criterion.threshold(3) == pytest.approx(0.125)

    def test_strictness_at_threshold(self):
        criterion = ExponentialCriterion()
        # Exactly p = 2^-d does NOT satisfy the strict criterion.
        assert not criterion.is_satisfied(0.125, 3)
        assert criterion.is_satisfied(0.1249, 3)

    def test_require_raises_with_context(self):
        criterion = ExponentialCriterion()
        with pytest.raises(CriterionViolationError, match="sinkless"):
            criterion.require(0.5, 2, context="sinkless test")

    def test_margin(self):
        criterion = ExponentialCriterion()
        assert criterion.margin(0.0625, 3) == pytest.approx(2.0)
        assert criterion.margin(0.0, 3) == math.inf


class TestSymmetricCriterion:
    def test_matches_formula(self):
        criterion = SymmetricLLLCriterion()
        assert criterion.threshold(3) == pytest.approx(1 / (math.e * 4))

    def test_weaker_than_exponential_for_large_d(self):
        exponential = ExponentialCriterion()
        symmetric = SymmetricLLLCriterion()
        for d in range(4, 20):
            assert symmetric.threshold(d) > exponential.threshold(d)


class TestPolynomialCriterion:
    def test_threshold(self):
        criterion = PolynomialCriterion()
        assert criterion.threshold(2) == pytest.approx(1 / (math.e * 4))
        assert criterion.threshold(0) == 1.0


class TestGHKCriterion:
    def test_threshold_scales_with_constant(self):
        assert GHKCriterion(2.0).threshold(2) == pytest.approx(2.0 / 256)

    def test_formula_mentions_constant(self):
        assert "0.5" in GHKCriterion(0.5).formula


class TestNaiveRankCriterion:
    def test_rank3_is_much_stronger_than_exponential(self):
        naive = NaiveRankCriterion(3)
        exponential = ExponentialCriterion()
        # p < 3^-C(d,2) decays much faster than 2^-d: the paper's point.
        for d in range(4, 12):
            assert naive.threshold(d) < exponential.threshold(d)

    def test_rank2_requires_r_at_least_2(self):
        with pytest.raises(CriterionViolationError):
            NaiveRankCriterion(1)

    def test_binomial_exponent(self):
        naive = NaiveRankCriterion(3)
        # C(4, 2) = 6, so threshold = 3^-6.
        assert naive.threshold(4) == pytest.approx(3.0**-6)


class TestReport:
    def test_report_structure(self):
        report = criterion_report(0.01, 4)
        assert "p < 2^-d" in report
        entry = report["p < 2^-d"]
        assert entry["satisfied"] is True
        assert entry["threshold"] == pytest.approx(0.0625)
        assert entry["margin"] == pytest.approx(6.25)

    def test_report_at_threshold(self):
        report = criterion_report(0.25, 2)
        assert report["p < 2^-d"]["satisfied"] is False
