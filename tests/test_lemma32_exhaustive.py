"""Exhaustive validation of the Variable Fixing Lemma (Lemma 3.2).

The lemma is stronger than its use in Theorem 1.3 suggests: it needs no
LLL criterion at all.  For *any* rank-3 random variable (any
distribution, any three events, any partial assignment) and *any*
representable triple ``(a, b, c)``, some value's scaled increase triple
stays inside ``S_rep``.  These tests hammer exactly that statement:

* a deterministic grid over ``S_rep`` (including its boundary surface)
  crossed with a family of adversarial gadgets, and
* hypothesis-generated gadgets with random distributions, random
  predicates and random partial fixings.

Every single case must produce a non-evil value; one counterexample
would falsify the paper's central lemma (or reveal a bug in the exact
probability engine or the geometry).
"""

import itertools
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import select_rank3
from repro.geometry import boundary_surface, is_representable_triple
from repro.probability import BadEvent, DiscreteVariable, PartialAssignment


def _gadget(rng, alphabet, extra_bits=1):
    """A random rank-3 gadget: one shared variable, three random events.

    Each event depends on the shared variable plus ``extra_bits`` private
    coins, with a random predicate (random bad-outcome set, non-trivial).
    """
    shared = DiscreteVariable(
        "shared",
        tuple(range(alphabet)),
        _random_distribution(rng, alphabet),
    )
    events = []
    for label in "UVW":
        privates = [
            DiscreteVariable(
                (label, i), (0, 1), _random_distribution(rng, 2)
            )
            for i in range(extra_bits)
        ]
        scope = [shared] + privates
        outcomes = list(
            itertools.product(*(variable.values for variable in scope))
        )
        # Random non-empty proper subset of outcomes is 'bad'.
        k = rng.randint(1, len(outcomes) - 1)
        bad = frozenset(rng.sample(outcomes, k))
        names = tuple(v.name for v in scope)

        def predicate(values, _names=names, _bad=bad):
            return tuple(values[name] for name in _names) in _bad

        events.append(BadEvent(label, scope, predicate))
    return shared, events


def _random_distribution(rng, size):
    weights = [rng.uniform(0.05, 1.0) for _ in range(size)]
    total = sum(weights)
    return tuple(w / total for w in weights)


def _triple_grid(steps=4):
    """Representable triples covering the interior and the surface."""
    triples = []
    for i in range(steps + 1):
        a = 4.0 * i / steps
        for j in range(steps + 1 - i):
            b = 4.0 * j / steps
            ceiling = boundary_surface(a, b)
            for fraction in (0.0, 0.5, 1.0):
                triples.append((a, b, ceiling * fraction))
    return triples


class TestLemma32Exhaustively:
    def test_grid_of_triples_times_gadgets(self):
        rng = random.Random(2024)
        gadgets = [_gadget(rng, alphabet) for alphabet in (2, 3, 4, 5)]
        checked = 0
        for a, b, c in _triple_grid(steps=4):
            assert is_representable_triple(a, b, c)
            for shared, events in gadgets:
                choice = select_rank3(
                    shared, events, (a, b, c), PartialAssignment()
                )
                assert choice.num_good_values >= 1
                assert is_representable_triple(
                    *choice.triple, tolerance=1e-6
                )
                checked += 1
        assert checked >= 100  # the sweep is genuinely exhaustive

    def test_boundary_triples_with_partial_fixings(self):
        rng = random.Random(7)
        for _trial in range(50):
            shared, events = _gadget(rng, alphabet=3, extra_bits=2)
            # Fix a random subset of the private coins first.
            assignment = PartialAssignment()
            for event in events:
                for variable in event.variables[1:]:
                    if rng.random() < 0.5:
                        assignment.fix(
                            variable, rng.choice(variable.values)
                        )
            a = rng.uniform(0, 4)
            b = rng.uniform(0, 4 - a)
            c = boundary_surface(a, b)  # worst case: ON the surface
            choice = select_rank3(shared, events, (a, b, c), assignment)
            assert choice.num_good_values >= 1

    @given(st.integers(0, 10**9))
    @settings(max_examples=60, deadline=None)
    def test_random_gadgets_random_triples(self, seed):
        rng = random.Random(seed)
        shared, events = _gadget(
            rng, alphabet=rng.choice((2, 3, 4)), extra_bits=rng.choice((1, 2))
        )
        a = rng.uniform(0, 4)
        b = rng.uniform(0, 4 - a)
        c = rng.uniform(0, boundary_surface(a, b))
        choice = select_rank3(
            shared, events, (a, b, c), PartialAssignment()
        )
        # Lemma 3.2: a non-evil value exists — unconditionally.
        assert choice.num_good_values >= 1
        assert is_representable_triple(*choice.triple, tolerance=1e-6)
        for total in choice.decomposition.edge_sums():
            assert total <= 2.0 + 1e-9

    @given(st.integers(0, 10**9))
    @settings(max_examples=30, deadline=None)
    def test_degenerate_corners(self, seed):
        """Corners of S_rep: (4,0,0), (0,4,0), (0,0,4) and the origin."""
        rng = random.Random(seed)
        shared, events = _gadget(rng, alphabet=3)
        for corner in ((4.0, 0.0, 0.0), (0.0, 4.0, 0.0), (0.0, 0.0, 4.0),
                       (0.0, 0.0, 0.0)):
            choice = select_rank3(
                shared, events, corner, PartialAssignment()
            )
            assert choice.num_good_values >= 1
