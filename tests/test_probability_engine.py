"""Differential tests: the compiled kernel engine vs the naive oracle.

The compiled engine (``repro.probability.engine``) answers the same
queries as the naive enumerator — ``probability``, ``conditional_increase``
and the batch ``conditional_increases`` — from a truth table compiled
once per event.  These tests hold the two engines together on randomly
generated small events (rank <= 3 scopes, mixed supports, partial
assignments) to within 1e-12, plus unit tests for the engine switch, the
kernel data structure, the mass-tolerance check and the bounded cache.
"""

import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import (
    EnumerationLimitError,
    InvalidAssignmentError,
    ProbabilityMassError,
    ReproError,
)
from repro.probability import (
    BadEvent,
    DiscreteVariable,
    PartialAssignment,
    engine_mode,
    set_engine_mode,
    using_engine,
)
from repro.probability.engine import (
    ENGINE_ENV,
    EventKernel,
    checked_mass_sum,
    publish_stats,
    reset_stats,
    stats,
)

PARITY_TOLERANCE = 1e-12


# ----------------------------------------------------------------------
# Strategies: random small events with mixed supports
# ----------------------------------------------------------------------
def _distributions(num_values):
    """Probability vectors over ``num_values`` values (may contain 0)."""
    return st.lists(
        st.integers(min_value=0, max_value=10),
        min_size=num_values,
        max_size=num_values,
    ).filter(lambda weights: sum(weights) > 0).map(
        lambda weights: tuple(w / sum(weights) for w in weights)
    )


@st.composite
def random_events(draw):
    """A random event of rank <= 3 plus a random partial assignment.

    Returns ``(make_event, variables, assignment, free)`` where
    ``make_event()`` builds a fresh event over the shared variables (the
    predicate is a tabulated random bad set, so both engines see the
    same function), ``assignment`` fixes a random subset of the scope
    (including out-of-scope names, which the event must ignore), and
    ``free`` lists the unfixed scope variables.
    """
    num_variables = draw(st.integers(min_value=1, max_value=3))
    variables = []
    for position in range(num_variables):
        num_values = draw(st.integers(min_value=2, max_value=4))
        probabilities = draw(_distributions(num_values))
        variables.append(
            DiscreteVariable(
                f"x{position}", tuple(range(num_values)), probabilities
            )
        )
    outcomes = []
    for values in _all_outcomes(variables):
        if draw(st.booleans()):
            outcomes.append(values)
    bad = frozenset(outcomes)
    order = tuple(v.name for v in variables)

    def make_event():
        return BadEvent(
            "event",
            variables,
            lambda values: tuple(values[name] for name in order) in bad,
        )

    assignment = PartialAssignment()
    free = []
    for variable in variables:
        if draw(st.booleans()):
            assignment.fix(variable, draw(st.sampled_from(variable.values)))
        else:
            free.append(variable)
    if draw(st.booleans()):
        assignment.fix(DiscreteVariable("unrelated", (0, 1)), 0)
    return make_event, variables, assignment, free


def _all_outcomes(variables):
    outcomes = [()]
    for variable in variables:
        outcomes = [
            prefix + (value,)
            for prefix in outcomes
            for value in variable.values
        ]
    return outcomes


# ----------------------------------------------------------------------
# Engine parity (the differential suite)
# ----------------------------------------------------------------------
class TestEngineParity:
    @settings(max_examples=200, deadline=None)
    @given(random_events())
    def test_probability_agrees(self, case):
        make_event, _variables, assignment, _free = case
        with using_engine("naive"):
            expected = make_event().probability(assignment)
        with using_engine("compiled"):
            event = make_event()
            actual = event.probability(assignment)
            assert event.kernel_compiled
        assert actual == pytest.approx(expected, abs=PARITY_TOLERANCE)

    @settings(max_examples=200, deadline=None)
    @given(random_events())
    def test_conditional_increase_agrees(self, case):
        make_event, _variables, assignment, free = case
        if not free:
            return
        variable = free[0]
        for value in variable.values:
            with using_engine("naive"):
                expected = make_event().conditional_increase(
                    assignment, variable, value
                )
            with using_engine("compiled"):
                actual = make_event().conditional_increase(
                    assignment, variable, value
                )
            assert actual == pytest.approx(expected, abs=PARITY_TOLERANCE)

    @settings(max_examples=200, deadline=None)
    @given(random_events())
    def test_batch_agrees_with_scalar_queries(self, case):
        make_event, _variables, assignment, free = case
        if not free:
            return
        variable = free[0]
        with using_engine("naive"):
            naive_batch = make_event().conditional_increases(
                assignment, variable
            )
        with using_engine("compiled"):
            compiled_batch = make_event().conditional_increases(
                assignment, variable
            )
            scalar = {
                value: make_event().conditional_increase(
                    assignment, variable, value
                )
                for value, _prob in variable.support_items()
            }
        assert set(naive_batch) == set(compiled_batch) == set(scalar)
        for value, expected in naive_batch.items():
            assert compiled_batch[value] == pytest.approx(
                expected, abs=PARITY_TOLERANCE
            )
            assert scalar[value] == pytest.approx(
                expected, abs=PARITY_TOLERANCE
            )

    @settings(max_examples=100, deadline=None)
    @given(random_events())
    def test_occurs_agrees_on_full_assignments(self, case):
        make_event, variables, _assignment, _free = case
        full = PartialAssignment()
        for variable in variables:
            full.fix(variable, variable.values[0])
        with using_engine("naive"):
            expected = make_event().occurs(full)
        with using_engine("compiled"):
            assert make_event().occurs(full) == expected

    @settings(max_examples=100, deadline=None)
    @given(random_events())
    def test_bad_outcomes_identical(self, case):
        make_event, _variables, _assignment, _free = case
        with using_engine("naive"):
            naive_outcomes = make_event().bad_outcomes()
        with using_engine("compiled"):
            compiled_outcomes = make_event().bad_outcomes()
        assert naive_outcomes == compiled_outcomes


# ----------------------------------------------------------------------
# Engine switching
# ----------------------------------------------------------------------
class TestEngineSwitch:
    @pytest.mark.skipif(
        os.environ.get(ENGINE_ENV) not in (None, "compiled"),
        reason="suite was launched with a non-default engine override",
    )
    def test_default_mode_is_compiled(self):
        assert engine_mode() == "compiled"

    def test_set_engine_mode_returns_previous(self):
        previous = set_engine_mode("naive")
        try:
            assert engine_mode() == "naive"
        finally:
            set_engine_mode(previous)
        assert engine_mode() == previous

    def test_using_engine_restores_mode(self):
        with using_engine("naive"):
            assert engine_mode() == "naive"
        assert engine_mode() == "compiled"

    def test_invalid_mode_rejected(self):
        with pytest.raises(ReproError):
            set_engine_mode("quantum")

    def test_naive_mode_never_compiles(self):
        variables = [DiscreteVariable.fair_coin("c")]
        with using_engine("naive"):
            event = BadEvent("e", variables, lambda values: values["c"] == 1)
            event.probability()
            assert not event.kernel_compiled

    def test_oversized_scope_stays_naive_and_raises(self):
        variables = [DiscreteVariable.fair_coin(f"c{i}") for i in range(30)]
        event = BadEvent(
            "huge",
            variables,
            lambda values: True,
            enumeration_limit=1024,
        )
        with pytest.raises(EnumerationLimitError) as excinfo:
            event.probability()
        assert not event.kernel_compiled
        # Satellite: the error names the scope and fires before any work.
        assert "c0" in str(excinfo.value)


# ----------------------------------------------------------------------
# The kernel data structure
# ----------------------------------------------------------------------
class TestEventKernel:
    def _variables(self):
        return [
            DiscreteVariable("a", (0, 1, 2)),
            DiscreteVariable("b", (0, 1)),
        ]

    def test_strides_are_mixed_radix(self):
        kernel = EventKernel.compile(
            self._variables(), lambda values: False
        )
        assert kernel.strides == (2, 1)
        assert kernel.num_outcomes == 6
        assert kernel.num_bad == 0

    def test_encode_and_occurs(self):
        kernel = EventKernel.compile(
            self._variables(),
            lambda values: values["a"] == 2 and values["b"] == 1,
        )
        assert kernel.num_bad == 1
        assert kernel.encode((2, 1)) == 5
        assert kernel.occurs((2, 1))
        assert not kernel.occurs((0, 0))

    def test_from_outcomes_drops_unknown_values(self):
        kernel = EventKernel.from_outcomes(
            self._variables(), [(2, 1), (9, 0), (0, 1, 1)]
        )
        assert kernel.bad_value_tuples() == [(2, 1)]

    def test_probability_conditions_on_pins(self):
        kernel = EventKernel.compile(
            self._variables(), lambda values: values["b"] == 1
        )
        assert kernel.probability([-1, -1], "t") == pytest.approx(0.5)
        assert kernel.probability([-1, 1], "t") == pytest.approx(1.0)
        assert kernel.probability([-1, 0], "t") == 0.0

    def test_conditional_masses_matches_pinned_probabilities(self):
        kernel = EventKernel.compile(
            self._variables(),
            lambda values: values["a"] != values["b"],
        )
        masses = kernel.conditional_masses([-1, -1], 0, "t")
        for index in range(3):
            assert masses[index] == pytest.approx(
                kernel.probability([index, -1], "t")
            )


# ----------------------------------------------------------------------
# Mass tolerance (satellite: no silent clamping)
# ----------------------------------------------------------------------
class TestMassTolerance:
    def test_dust_is_clamped(self):
        assert checked_mass_sum([0.5, 0.5, 1e-16], "t") == 1.0

    def test_excess_mass_raises(self):
        with pytest.raises(ProbabilityMassError):
            checked_mass_sum([0.7, 0.7], "broken distribution")

    def test_event_with_bogus_weights_raises(self):
        # Corrupt a distribution past the constructor's validation: both
        # engines must surface the broken mass rather than clamp it.
        variable = DiscreteVariable("v", (0, 1), (0.5, 0.5))
        variable._probabilities = (0.9, 0.9)  # noqa: SLF001 - on purpose
        with using_engine("naive"):
            with pytest.raises(ProbabilityMassError):
                BadEvent("e1", [variable], lambda values: True).probability()
        with using_engine("compiled"):
            with pytest.raises(ProbabilityMassError):
                BadEvent("e2", [variable], lambda values: True).probability()


# ----------------------------------------------------------------------
# Bounded cache (satellite)
# ----------------------------------------------------------------------
class TestBoundedCache:
    def test_cache_evicts_at_limit(self):
        variables = [DiscreteVariable("a", tuple(range(10)))]
        event = BadEvent(
            "e", variables, lambda values: values["a"] == 0, cache_limit=3
        )
        for value in range(6):
            event.probability(
                PartialAssignment().fix(variables[0], value)
            )
        info = event.cache_info()
        assert event.cache_size == 3
        assert info["limit"] == 3
        assert info["evictions"] == 3
        assert info["misses"] == 6

    def test_cache_disabled_with_zero_limit(self):
        variables = [DiscreteVariable.fair_coin("c")]
        event = BadEvent(
            "e", variables, lambda values: values["c"] == 1, cache_limit=0
        )
        event.probability()
        event.probability()
        assert event.cache_size == 0

    def test_batch_populates_cache_for_followup_queries(self):
        variables = [
            DiscreteVariable.fair_coin("c0"),
            DiscreteVariable.fair_coin("c1"),
        ]
        event = BadEvent(
            "e",
            variables,
            lambda values: values["c0"] == 1 and values["c1"] == 1,
        )
        assignment = PartialAssignment()
        event.conditional_increases(assignment, variables[0])
        hits_before = event.cache_info()["hits"]
        # The fixer's follow-up query after committing a value.
        event.probability(assignment.fixed(variables[0], 1))
        assert event.cache_info()["hits"] == hits_before + 1

    def test_batch_on_fixed_variable_rejected(self):
        variables = [DiscreteVariable.fair_coin("c")]
        event = BadEvent("e", variables, lambda values: values["c"] == 1)
        assignment = PartialAssignment().fix(variables[0], 1)
        with pytest.raises(InvalidAssignmentError):
            event.conditional_increases(assignment, variables[0])


# ----------------------------------------------------------------------
# Engine statistics
# ----------------------------------------------------------------------
class TestEngineStats:
    def test_counters_accumulate_and_reset(self):
        reset_stats()
        variables = [DiscreteVariable.fair_coin("c")]
        with using_engine("compiled"):
            event = BadEvent("e", variables, lambda values: values["c"] == 1)
            event.probability()
        snapshot = stats()
        assert snapshot["kernel_compiles"] == 1
        assert snapshot["kernel_queries"] == 1
        reset_stats()
        assert stats()["kernel_compiles"] == 0

    def test_publish_stats_reports_deltas(self):
        class FakeRecorder:
            def __init__(self):
                self.counts = {}

            def count(self, component, name, delta=1):
                key = (component, name)
                self.counts[key] = self.counts.get(key, 0) + delta

        reset_stats()
        variables = [DiscreteVariable.fair_coin("c")]
        with using_engine("compiled"):
            event = BadEvent("e", variables, lambda values: values["c"] == 1)
            event.probability()
        recorder = FakeRecorder()
        first = publish_stats(recorder)
        assert first["kernel_compiles"] == 1
        # Publishing again without new work adds nothing.
        assert publish_stats(recorder) == {}
        assert recorder.counts[("engine", "kernel_compiles")] == 1
