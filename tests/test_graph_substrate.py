"""Differential suite for the array-native graph substrate.

Pins down the contract of the PR: everything :mod:`repro.graph` computes
— CSR adjacency, virtual-graph constructions, vectorized colorings,
batched simulator rounds, CSR-backed plans — is *element-identical* to
the per-node / networkx reference implementations, including
multi-component graphs, isolated nodes, and single-node networks.
"""

from __future__ import annotations

import random

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.coloring.cole_vishkin import (
    compute_cole_vishkin_coloring,
    cycle_parents,
)
from repro.coloring.derived import (
    compute_edge_coloring,
    compute_two_hop_coloring,
)
from repro.coloring.linial import LinialColoringAlgorithm
from repro.coloring.reduction import (
    GreedyColorReductionAlgorithm,
    KWColorReductionAlgorithm,
)
from repro.coloring.vertex import compute_vertex_coloring
from repro.core.distributed import solve_distributed
from repro.core.indexing import indexed_csr, indexed_dependency_network
from repro.errors import ColoringError, GraphSubstrateError
from repro.generators.graphs import cycle_csr, random_regular_csr, torus_csr
from repro.generators.instances import all_zero_edge_instance
from repro.graph import (
    BatchedSimulator,
    CSRGraph,
    GreedyReductionArrayAlgorithm,
    KWReductionArrayAlgorithm,
    LinialArrayAlgorithm,
    line_graph_csr,
    square_csr,
    use_backend,
)
from repro.local_model.algorithm import LocalAlgorithm
from repro.local_model.network import (
    Network,
    line_graph_network,
    square_graph_network,
)
from repro.local_model.simulator import Simulator
from repro.runtime.plan import build_plan_rank2, build_plan_rank3


@st.composite
def random_graphs(draw, min_nodes=1, max_nodes=32):
    """Erdős–Rényi graphs incl. edgeless, isolated-node, multi-component."""
    n = draw(st.integers(min_nodes, max_nodes))
    density = draw(st.sampled_from([0.0, 0.05, 0.15, 0.3, 0.6]))
    seed = draw(st.integers(0, 10**6))
    return nx.gnp_random_graph(n, density, seed=seed)


@st.composite
def instance_graphs(draw, max_nodes=18):
    """Cycle plus random chords: connected, no isolated nodes."""
    n = draw(st.integers(3, max_nodes))
    extra = draw(st.integers(0, n // 2))
    seed = draw(st.integers(0, 10**6))
    rng = random.Random(seed)
    graph = nx.cycle_graph(n)
    for _ in range(extra):
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v:
            graph.add_edge(u, v)
    return graph


@st.composite
def rooted_forests(draw, max_nodes=40):
    """A random labelled tree with parents oriented toward node 0."""
    n = draw(st.integers(2, max_nodes))
    seed = draw(st.integers(0, 10**6))
    rng = random.Random(seed)
    if n == 2:
        tree = nx.path_graph(2)
    else:
        tree = nx.from_prufer_sequence(
            [rng.randrange(n) for _ in range(n - 2)]
        )
    parents = {0: None}
    for parent, child in nx.bfs_edges(tree, 0):
        parents[child] = parent
    return tree, parents


class TestCSRAdjacency:
    @given(random_graphs())
    @settings(max_examples=40, deadline=None)
    def test_matches_networkx(self, graph):
        if graph.number_of_nodes() == 0:
            return
        csr = CSRGraph.from_networkx(graph)
        assert csr.num_nodes == graph.number_of_nodes()
        assert csr.num_edges == graph.number_of_edges()
        for node in graph.nodes():
            assert csr.neighbors(node) == sorted(graph.neighbors(node))
        assert sorted(map(tuple, map(sorted, csr.edges()))) == sorted(
            map(tuple, map(sorted, graph.edges()))
        )
        assert dict(csr.degree()) == dict(graph.degree())

    @given(random_graphs())
    @settings(max_examples=20, deadline=None)
    def test_duck_api_yields_python_ints(self, graph):
        if graph.number_of_nodes() == 0:
            return
        csr = CSRGraph.from_networkx(graph)
        for node in csr.nodes():
            assert type(node) is int
            for neighbor in csr.neighbors(node):
                assert type(neighbor) is int
        for u, v in csr.edges():
            assert type(u) is int and type(v) is int

    def test_isolated_nodes_and_components(self):
        graph = nx.Graph()
        graph.add_nodes_from(range(10))
        graph.add_edges_from([(0, 1), (1, 2), (5, 6), (8, 9)])
        csr = CSRGraph.from_networkx(graph)
        assert csr.neighbors(3) == []
        assert csr.neighbors(4) == []
        assert csr.max_degree == 2
        assert csr.has_edge(5, 6) and not csr.has_edge(5, 8)

    def test_rejects_self_loops_and_bad_endpoints(self):
        with pytest.raises(GraphSubstrateError):
            CSRGraph.from_edges(
                3, np.array([0, 1]), np.array([0, 2])
            )
        with pytest.raises(GraphSubstrateError):
            CSRGraph.from_edges(3, np.array([0]), np.array([5]))

    def test_object_dtype_fails_loudly(self):
        with pytest.raises(GraphSubstrateError, match="object"):
            CSRGraph.from_edges(
                3,
                np.array([0, None], dtype=object),
                np.array([1, 2], dtype=object),
            )
        with pytest.raises(GraphSubstrateError):
            CSRGraph.from_edges(
                3, np.array([0.0, 1.0]), np.array([1.0, 2.0])
            )


class TestVirtualGraphs:
    @given(random_graphs(min_nodes=2))
    @settings(max_examples=40, deadline=None)
    def test_line_graph_matches_reference(self, graph):
        if graph.number_of_edges() == 0:
            return
        network = Network(graph)
        virtual, index = line_graph_network(network)
        csr = CSRGraph.from_networkx(graph)
        line, edge_u, edge_v = line_graph_csr(csr)
        # Same numbering: the i-th lexicographic edge is virtual node i.
        for i, (u, v) in enumerate(zip(edge_u.tolist(), edge_v.tolist())):
            assert index[(u, v)] == i
        assert sorted(map(tuple, map(sorted, line.edges()))) == sorted(
            map(tuple, map(sorted, virtual.graph.edges()))
        )

    @given(random_graphs())
    @settings(max_examples=40, deadline=None)
    def test_square_graph_matches_reference(self, graph):
        if graph.number_of_nodes() == 0:
            return
        network = Network(graph)
        square_ref = square_graph_network(network)
        square = square_csr(CSRGraph.from_networkx(graph))
        assert sorted(map(tuple, map(sorted, square.edges()))) == sorted(
            map(tuple, map(sorted, square_ref.graph.edges()))
        )


class TestColoringDifferential:
    @given(random_graphs(), st.sampled_from(["kw", "greedy"]))
    @settings(max_examples=30, deadline=None)
    def test_vertex_coloring_bit_identical(self, graph, reduction):
        if graph.number_of_nodes() == 0:
            return
        network = Network(graph)
        with use_backend("reference"):
            ref = compute_vertex_coloring(network, reduction=reduction)
        with use_backend("vectorized"):
            fast = compute_vertex_coloring(network, reduction=reduction)
        assert ref.colors == fast.colors
        assert ref.palette == fast.palette
        assert ref.linial_rounds == fast.linial_rounds
        assert ref.reduction_rounds == fast.reduction_rounds

    @given(random_graphs(min_nodes=2))
    @settings(max_examples=20, deadline=None)
    def test_edge_coloring_bit_identical(self, graph):
        if graph.number_of_edges() == 0:
            return
        network = Network(graph)
        with use_backend("reference"):
            ref = compute_edge_coloring(network)
        with use_backend("vectorized"):
            fast = compute_edge_coloring(network)
        assert ref.colors == fast.colors
        assert (ref.palette, ref.host_rounds, ref.virtual_rounds) == (
            fast.palette,
            fast.host_rounds,
            fast.virtual_rounds,
        )

    @given(random_graphs())
    @settings(max_examples=20, deadline=None)
    def test_two_hop_coloring_bit_identical(self, graph):
        if graph.number_of_nodes() == 0:
            return
        network = Network(graph)
        with use_backend("reference"):
            ref = compute_two_hop_coloring(network)
        with use_backend("vectorized"):
            fast = compute_two_hop_coloring(network)
        assert ref.colors == fast.colors
        assert (ref.palette, ref.host_rounds, ref.virtual_rounds) == (
            fast.palette,
            fast.host_rounds,
            fast.virtual_rounds,
        )

    @given(rooted_forests())
    @settings(max_examples=25, deadline=None)
    def test_cole_vishkin_bit_identical(self, tree_and_parents):
        tree, parents = tree_and_parents
        network = Network(tree)
        with use_backend("reference"):
            ref = compute_cole_vishkin_coloring(network, parents)
        with use_backend("vectorized"):
            fast = compute_cole_vishkin_coloring(network, parents)
        assert ref == fast

    @given(st.integers(3, 60))
    @settings(max_examples=15, deadline=None)
    def test_cole_vishkin_cycles(self, n):
        network = Network(nx.cycle_graph(n))
        parents = cycle_parents(n)
        with use_backend("reference"):
            ref = compute_cole_vishkin_coloring(network, parents)
        with use_backend("vectorized"):
            fast = compute_cole_vishkin_coloring(network, parents)
        assert ref == fast

    def test_csr_input_accepted_directly(self):
        csr = cycle_csr(12)
        result = compute_two_hop_coloring(csr)
        with use_backend("reference"):
            ref = compute_two_hop_coloring(Network(nx.cycle_graph(12)))
        assert result.colors == ref.colors

    def test_improper_input_raises_in_both_backends(self):
        # Two adjacent nodes with equal colors: Linial must refuse.
        network = Network(nx.path_graph(2))
        csr = CSRGraph.from_networkx(nx.path_graph(2))
        algorithm = LinialColoringAlgorithm(64, 1)
        assert len(algorithm.schedule) > 0
        with pytest.raises(ColoringError):
            Simulator(
                network, algorithm, inputs={0: 1, 1: 1}
            ).run()
        fast = LinialArrayAlgorithm(64, 1)
        with pytest.raises(ColoringError):
            BatchedSimulator(
                csr, fast, inputs=np.array([1, 1])
            ).run()


class TestBatchedSimulator:
    @given(random_graphs(), st.sampled_from(["linial", "kw", "greedy"]))
    @settings(max_examples=25, deadline=None)
    def test_rounds_match_dict_simulator(self, graph, phase):
        if graph.number_of_nodes() == 0:
            return
        network = Network(graph)
        csr = CSRGraph.from_networkx(graph)
        n = csr.num_nodes
        degree = max(csr.max_degree, 1)
        if phase == "linial":
            reference = LinialColoringAlgorithm(n, degree)
            batched = LinialArrayAlgorithm(n, degree)
            inputs_ref = None
            inputs_arr = None
        else:
            # Reduce a valid (identity) coloring of palette n.
            target = csr.max_degree + 1
            if target >= n:
                return
            if phase == "kw":
                reference = KWColorReductionAlgorithm(n, target, csr.max_degree)
                batched = KWReductionArrayAlgorithm(n, target, csr.max_degree)
            else:
                reference = GreedyColorReductionAlgorithm(
                    n, target, csr.max_degree
                )
                batched = GreedyReductionArrayAlgorithm(
                    n, target, csr.max_degree
                )
            inputs_ref = {node: node for node in range(n)}
            inputs_arr = np.arange(n)
        ref = Simulator(
            network, reference, inputs=inputs_ref, record_trace=True
        ).run()
        fast = BatchedSimulator(
            csr, batched, inputs=inputs_arr, record_trace=True
        ).run()
        assert ref.outputs == fast.outputs
        assert ref.rounds == fast.rounds
        assert ref.messages_delivered == fast.messages_delivered
        assert ref.round_messages == fast.round_messages
        assert ref.round_payload_chars == fast.round_payload_chars
        assert ref.trace == fast.trace

    def test_inputs_dtype_guard(self):
        csr = cycle_csr(5)
        with pytest.raises(GraphSubstrateError):
            BatchedSimulator(
                csr,
                LinialArrayAlgorithm(5, 2),
                inputs=np.array([0.0, 1.0, 2.0, 3.0, 4.0]),
            )
        with pytest.raises(GraphSubstrateError):
            BatchedSimulator(
                csr, LinialArrayAlgorithm(5, 2), inputs=np.arange(4)
            )


class TestPlanAndSolveDifferential:
    @given(instance_graphs())
    @settings(max_examples=15, deadline=None)
    def test_plans_identical_across_backends(self, graph):
        instance = all_zero_edge_instance(graph, 3)
        with use_backend("reference"):
            ref2 = build_plan_rank2(instance)
            ref3 = build_plan_rank3(instance)
        with use_backend("vectorized"):
            fast2 = build_plan_rank2(instance)
            fast3 = build_plan_rank3(instance)
        assert ref2 == fast2
        assert ref3 == fast3

    @given(st.integers(3, 10))
    @settings(max_examples=8, deadline=None)
    def test_solve_distributed_identical(self, n):
        # Regular degrees keep the instance below the p < 2^-d threshold.
        instance = all_zero_edge_instance(nx.cycle_graph(n), 3)
        with use_backend("reference"):
            ref = solve_distributed(instance)
        with use_backend("vectorized"):
            fast = solve_distributed(instance)
        assert (
            ref.fixing.assignment.as_dict() == fast.fixing.assignment.as_dict()
        )
        assert (ref.coloring_rounds, ref.schedule_rounds, ref.palette) == (
            fast.coloring_rounds,
            fast.schedule_rounds,
            fast.palette,
        )

    @given(instance_graphs())
    @settings(max_examples=10, deadline=None)
    def test_indexed_csr_matches_indexed_network(self, graph):
        instance = all_zero_edge_instance(graph, 3)
        network, to_index, from_index = indexed_dependency_network(instance)
        csr, to_index2, from_index2 = indexed_csr(instance)
        assert to_index == to_index2
        assert from_index == from_index2
        assert sorted(map(tuple, map(sorted, csr.edges()))) == sorted(
            map(tuple, map(sorted, network.graph.edges()))
        )

    def test_indexings_are_cached_per_instance(self):
        instance = all_zero_edge_instance(nx.cycle_graph(8), 3)
        assert (
            indexed_dependency_network(instance)[0]
            is indexed_dependency_network(instance)[0]
        )
        assert indexed_csr(instance)[0] is indexed_csr(instance)[0]


class _CountingPayload:
    """A message whose ``repr`` calls are observable."""

    calls = 0

    def __repr__(self) -> str:
        type(self).calls += 1
        return "<payload>"


class _OneRoundBroadcast(LocalAlgorithm):
    def __init__(self, payload):
        self._payload = payload

    def initialize(self, node):
        pass

    def send(self, node, round_number):
        return {neighbor: self._payload for neighbor in node.neighbors}

    def receive(self, node, messages, round_number):
        node.halt_with(0)


class TestPayloadAccountingOptIn:
    """Regression: payload sizing must not run ``repr`` when tracing is off."""

    def test_no_repr_calls_when_tracing_off(self):
        _CountingPayload.calls = 0
        network = Network(nx.path_graph(3))
        result = Simulator(
            network, _OneRoundBroadcast(_CountingPayload())
        ).run()
        assert _CountingPayload.calls == 0
        assert result.round_payload_chars == (0,)
        assert result.messages_delivered == 4  # accounting still exact

    def test_repr_runs_under_record_trace(self):
        _CountingPayload.calls = 0
        network = Network(nx.path_graph(3))
        result = Simulator(
            network, _OneRoundBroadcast(_CountingPayload()), record_trace=True
        ).run()
        assert _CountingPayload.calls == 4
        assert result.total_payload_chars == 4 * len("<payload>")
        assert result.trace[0].payload_chars == result.total_payload_chars

    def test_track_payload_without_trace(self):
        _CountingPayload.calls = 0
        network = Network(nx.path_graph(3))
        result = Simulator(
            network,
            _OneRoundBroadcast(_CountingPayload()),
            track_payload=True,
        ).run()
        assert _CountingPayload.calls == 4
        assert result.total_payload_chars > 0
        assert result.trace == []


class TestCSRGenerators:
    def test_cycle_csr_matches_networkx(self):
        csr = cycle_csr(50)
        ref = nx.cycle_graph(50)
        assert sorted(map(tuple, map(sorted, csr.edges()))) == sorted(
            map(tuple, map(sorted, ref.edges()))
        )

    def test_torus_csr_matches_networkx(self):
        csr = torus_csr(4, 6)
        ref = nx.convert_node_labels_to_integers(
            nx.grid_2d_graph(4, 6, periodic=True), ordering="sorted"
        )
        assert sorted(map(tuple, map(sorted, csr.edges()))) == sorted(
            map(tuple, map(sorted, ref.edges()))
        )

    def test_random_regular_csr_matches_networkx(self):
        csr = random_regular_csr(26, 3, seed=5)
        ref = nx.random_regular_graph(3, 26, seed=5)
        assert sorted(map(tuple, map(sorted, csr.edges()))) == sorted(
            map(tuple, map(sorted, ref.edges()))
        )
