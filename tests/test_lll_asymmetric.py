"""Unit tests for the asymmetric LLL certificate finder."""

import math

import pytest

from repro.errors import ReproError
from repro.lll import (
    LLLInstance,
    asymmetric_criterion_holds,
    certificate_is_valid,
    expected_moser_tardos_resamplings,
    find_asymmetric_certificate,
)
from repro.applications import sinkless_orientation_instance
from repro.generators import (
    all_zero_edge_instance,
    cycle_graph,
    random_regular_graph,
)
from repro.probability import BadEvent, DiscreteVariable


class TestCertificateSearch:
    def test_finds_certificate_below_threshold(self):
        instance = all_zero_edge_instance(cycle_graph(10), 3)
        certificate = find_asymmetric_certificate(instance)
        assert certificate is not None
        assert certificate_is_valid(instance, certificate)
        assert all(0 < x < 1 for x in certificate.values())

    def test_certificate_is_least_fixed_point(self):
        # The least certificate dominates the raw probabilities.
        instance = all_zero_edge_instance(cycle_graph(8), 4)
        certificate = find_asymmetric_certificate(instance)
        for event in instance.events:
            assert certificate[event.name] >= event.probability() - 1e-12

    def test_sinkless_orientation_has_no_certificate(self):
        # p = 2^-3 with d = 3: even the general LLL condition fails
        # (max of x(1-x)^3 is 27/256 < 1/8).
        instance = sinkless_orientation_instance(
            random_regular_graph(12, 3, seed=0)
        )
        assert not asymmetric_criterion_holds(instance)

    def test_certain_event_has_no_certificate(self):
        coin = DiscreteVariable.fair_coin("c")
        certain = BadEvent("E", [coin], lambda values: True)
        assert find_asymmetric_certificate(LLLInstance([certain])) is None

    def test_independent_events_always_certify(self):
        # Disconnected dependency graph: condition is just p_v < 1.
        events = []
        for i in range(4):
            coins = [
                DiscreteVariable.fair_coin((i, j)) for j in range(2)
            ]
            events.append(BadEvent.all_equal(i, coins, target=1))
        instance = LLLInstance(events)
        certificate = find_asymmetric_certificate(instance)
        assert certificate is not None
        for x in certificate.values():
            assert x == pytest.approx(0.25, abs=1e-6)

    def test_asymmetric_weaker_than_exponential(self):
        # Sinkless orientation with degree 4 has p = 1/16, d = 4: the
        # exponential criterion fails (p = 2^-d) but x(1-x)^4 at x = 1/5
        # is 0.08192 > 1/16 — the general condition HOLDS.
        instance = sinkless_orientation_instance(
            random_regular_graph(10, 4, seed=1)
        )
        assert asymmetric_criterion_holds(instance)


class TestCertificateValidation:
    def test_rejects_out_of_range(self):
        instance = all_zero_edge_instance(cycle_graph(6), 3)
        bad = {event.name: 1.5 for event in instance.events}
        assert not certificate_is_valid(instance, bad)

    def test_rejects_missing_entries(self):
        instance = all_zero_edge_instance(cycle_graph(6), 3)
        assert not certificate_is_valid(instance, {})

    def test_rejects_too_small_values(self):
        instance = all_zero_edge_instance(cycle_graph(6), 3)
        tiny = {event.name: 1e-9 for event in instance.events}
        assert not certificate_is_valid(instance, tiny)

    def test_accepts_generous_certificate(self):
        instance = all_zero_edge_instance(cycle_graph(6), 4)
        # p = 1/16; x = 0.2 gives 0.2 * 0.8^2 = 0.128 >= 1/16.
        generous = {event.name: 0.2 for event in instance.events}
        assert certificate_is_valid(instance, generous)


class TestMoserTardosBound:
    def test_bound_formula(self):
        instance = all_zero_edge_instance(cycle_graph(8), 3)
        certificate = {event.name: 0.25 for event in instance.events}
        assert certificate_is_valid(instance, certificate)
        bound = expected_moser_tardos_resamplings(instance, certificate)
        assert bound == pytest.approx(8 * 0.25 / 0.75)

    def test_bound_with_least_certificate(self):
        instance = all_zero_edge_instance(cycle_graph(8), 3)
        bound = expected_moser_tardos_resamplings(instance)
        assert 0 < bound < 8  # small for this easy instance

    def test_bound_rejects_uncertifiable(self):
        instance = sinkless_orientation_instance(
            random_regular_graph(12, 3, seed=2)
        )
        with pytest.raises(ReproError):
            expected_moser_tardos_resamplings(instance)

    def test_bound_predicts_observed_work(self):
        # The MT bound must upper-bound the measured mean resamplings.
        import statistics

        from repro.baselines import sequential_moser_tardos

        instance = all_zero_edge_instance(cycle_graph(10), 3)
        bound = expected_moser_tardos_resamplings(instance)
        observed = statistics.mean(
            sequential_moser_tardos(
                all_zero_edge_instance(cycle_graph(10), 3), seed=seed
            ).resamplings
            for seed in range(10)
        )
        assert observed <= bound + 1.0


class TestSimulatorTrace:
    def test_trace_recording(self):
        from repro.local_model import BroadcastValue, Network, Simulator

        network = Network(cycle_graph(6))
        simulator = Simulator(network, BroadcastValue(2), record_trace=True)
        result = simulator.run()
        assert len(result.trace) == 2
        assert result.trace[0].round_number == 1
        assert result.trace[0].messages == 12  # 6 nodes x 2 neighbors
        assert result.trace[0].active_senders == 6
        assert result.trace[0].payload_chars > 0

    def test_trace_off_by_default(self):
        from repro.local_model import BroadcastValue, Network, run_algorithm

        network = Network(cycle_graph(6))
        result = run_algorithm(network, BroadcastValue(1))
        assert result.trace == []
