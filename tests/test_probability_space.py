"""Unit tests for repro.probability.space."""

import math
import random

import pytest

from repro.errors import EnumerationLimitError, UnknownVariableError
from repro.probability import (
    DiscreteVariable,
    PartialAssignment,
    ProductSpace,
)


@pytest.fixture
def space():
    return ProductSpace(
        [
            DiscreteVariable.fair_coin("a"),
            DiscreteVariable.fair_coin("b"),
            DiscreteVariable("c", (0, 1, 2)),
        ]
    )


class TestBasics:
    def test_len_and_contains(self, space):
        assert len(space) == 3
        assert "a" in space
        assert "z" not in space

    def test_variable_lookup(self, space):
        assert space.variable("c").num_values == 3
        with pytest.raises(UnknownVariableError):
            space.variable("z")

    def test_duplicate_names_rejected(self):
        with pytest.raises(UnknownVariableError):
            ProductSpace(
                [DiscreteVariable.fair_coin("a"), DiscreteVariable.fair_coin("a")]
            )

    def test_num_outcomes(self, space):
        assert space.num_outcomes == 2 * 2 * 3


class TestEnumeration:
    def test_total_mass_is_one(self, space):
        total = math.fsum(mass for _a, mass in space.enumerate_assignments())
        assert total == pytest.approx(1.0)

    def test_enumeration_respects_given(self, space):
        given = PartialAssignment().fix(space.variable("a"), 1)
        outcomes = list(space.enumerate_assignments(given))
        assert len(outcomes) == 6
        assert all(a.value_of("a") == 1 for a, _m in outcomes)

    def test_enumeration_limit(self):
        variables = [DiscreteVariable.fair_coin(f"v{i}") for i in range(30)]
        space = ProductSpace(variables, enumeration_limit=100)
        with pytest.raises(EnumerationLimitError):
            list(space.enumerate_assignments())


class TestProbabilityAndExpectation:
    def test_probability_of_simple_predicate(self, space):
        probability = space.probability(
            lambda a: a.value_of("a") == 1 and a.value_of("c") == 0
        )
        assert probability == pytest.approx(0.5 * (1 / 3))

    def test_conditional_probability(self, space):
        given = PartialAssignment().fix(space.variable("b"), 0)
        probability = space.probability(
            lambda a: a.value_of("b") == 0, given=given
        )
        assert probability == 1.0

    def test_expectation(self, space):
        expectation = space.expectation(
            lambda a: float(a.value_of("c"))
        )
        assert expectation == pytest.approx(1.0)


class TestSampling:
    def test_sample_is_complete(self, space):
        rng = random.Random(0)
        sample = space.sample(rng)
        assert all(sample.is_fixed(name) for name in ("a", "b", "c"))

    def test_sample_keeps_given(self, space):
        rng = random.Random(0)
        given = PartialAssignment().fix(space.variable("c"), 2)
        sample = space.sample(rng, given)
        assert sample.value_of("c") == 2

    def test_resample_changes_only_named(self, space):
        rng = random.Random(1)
        original = space.sample(rng)
        resampled = space.resample(rng, original, ["a"])
        assert resampled.value_of("b") == original.value_of("b")
        assert resampled.value_of("c") == original.value_of("c")
        # The original is untouched.
        assert original.is_fixed("a")
