"""Smoke tests: every example script runs to completion and verifies.

The examples are part of the public surface; these tests import each
one and execute its ``main()``, asserting the success markers in its
output so documentation rot shows up in CI.
"""

import importlib.util
import os
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")


def _run_example(name, capsys):
    path = os.path.join(EXAMPLES_DIR, f"{name}.py")
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    module.main()
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = _run_example("quickstart", capsys)
        assert "all events avoided:   True" in out

    def test_threshold_demo(self, capsys):
        out = _run_example("threshold_demo", capsys)
        assert "REJECTED" in out
        assert "sinkless = True" in out

    def test_hypergraph_orientation(self, capsys):
        out = _run_example("hypergraph_orientation", capsys)
        assert "requirement met" in out
        assert "True" in out

    def test_weak_splitting_demo(self, capsys):
        out = _run_example("weak_splitting_demo", capsys)
        assert "requirement met: True" in out

    def test_sat_demo(self, capsys):
        out = _run_example("sat_demo", capsys)
        assert "satisfying assignment found: True" in out

    def test_property_b_demo(self, capsys):
        out = _run_example("property_b_demo", capsys)
        assert "deterministic 2-coloring found: True" in out

    def test_message_protocol_demo(self, capsys):
        out = _run_example("message_protocol_demo", capsys)
        assert out.count("valid: True") == 2
