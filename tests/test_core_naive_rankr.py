"""Unit tests for the naive rank-r fixer (the paper's §1 generalisation)."""

import math
import random

import pytest

from repro.errors import CriterionViolationError, PStarViolationError
from repro.core import (
    NaiveRankRFixer,
    check_naive_criterion,
    naive_threshold,
    solve_naive,
)
from repro.generators import (
    all_zero_edge_instance,
    all_zero_triple_instance,
    cycle_graph,
    cyclic_triples,
)
from repro.lll import LLLInstance, verify_solution
from repro.probability import BadEvent, DiscreteVariable


def _rank4_instance(alphabet: int, groups: int = 3) -> LLLInstance:
    """Rank-4 instance: disjoint groups of 4 events sharing one variable.

    Event probability per group: ``1/alphabet`` (bad iff the shared
    variable is 0); each event sits in exactly one hyperedge, so the
    naive criterion needs ``1/alphabet < 4^-1``.
    """
    events = []
    for group in range(groups):
        shared = DiscreteVariable(("g", group), tuple(range(alphabet)))
        for position in range(4):
            events.append(
                BadEvent.all_equal((group, position), [shared], target=0)
            )
    return LLLInstance(events)


def _rank4_chain_instance(alphabet: int, length: int = 6) -> LLLInstance:
    """Overlapping rank-4 hyperedges: variable i touches events i..i+3."""
    variables = [
        DiscreteVariable(("v", i), tuple(range(alphabet)))
        for i in range(length)
    ]
    num_events = length + 3
    scopes = [[] for _ in range(num_events)]
    for i, variable in enumerate(variables):
        for offset in range(4):
            scopes[i + offset].append(variable)

    events = []
    for index, scope in enumerate(scopes):
        names = tuple(v.name for v in scope)

        def predicate(values, _names=names):
            return all(values[name] == 0 for name in _names)

        events.append(BadEvent(index, scope, predicate))
    return LLLInstance(events)


class TestCriterion:
    def test_threshold_formula(self):
        assert naive_threshold(3, 2) == pytest.approx(1 / 9)
        assert naive_threshold(4, 1) == pytest.approx(0.25)
        # Rank < 2 clamps to 2 (the rank-2 budget).
        assert naive_threshold(1, 3) == pytest.approx(0.125)

    def test_accepts_easy_rank4(self):
        check_naive_criterion(_rank4_instance(alphabet=5))

    def test_rejects_at_naive_threshold(self):
        # p = 1/4 = 4^-1 exactly.
        with pytest.raises(CriterionViolationError):
            check_naive_criterion(_rank4_instance(alphabet=4))

    def test_rejects_what_rank3_fixer_accepts(self):
        # The paper's point: the naive criterion is far stronger than
        # p < 2^-d.  Cyclic triples with alphabet 5: each node has 3
        # hyperedges, so naive needs p < 3^-3 = 1/27, but p = 5^-3 =
        # 1/125 < 1/27 — too easy.  Alphabet 3 gives p = 1/27 = 3^-3
        # exactly: naive rejects while p < 2^-d still holds.
        instance = all_zero_triple_instance(9, cyclic_triples(9), 3)
        assert instance.max_event_probability < 2.0**-4  # below the paper
        with pytest.raises(CriterionViolationError):
            check_naive_criterion(instance)


class TestFixing:
    def test_solves_disjoint_rank4(self):
        instance = _rank4_instance(alphabet=5)
        result = solve_naive(instance)
        assert verify_solution(instance, result.assignment).ok

    def test_solves_overlapping_rank4_chain(self):
        # Each event is in <= 4 hyperedges; p = alphabet^-scope. With
        # alphabet 5 every event satisfies p_v < 4^-H_v by a margin.
        instance = _rank4_chain_instance(alphabet=5)
        fixer = NaiveRankRFixer(instance)
        result = fixer.run()
        fixer.check_invariant()
        assert verify_solution(instance, result.assignment).ok

    def test_solves_rank2_instances_too(self):
        instance = all_zero_edge_instance(cycle_graph(10), 5)
        result = solve_naive(instance)
        assert verify_solution(instance, result.assignment).ok

    def test_random_orders(self):
        rng = random.Random(0)
        for _ in range(5):
            instance = _rank4_chain_instance(alphabet=6)
            order = [v.name for v in instance.variables]
            rng.shuffle(order)
            result = solve_naive(instance, order=order)
            assert verify_solution(instance, result.assignment).ok

    def test_certified_bounds_below_one(self):
        instance = _rank4_chain_instance(alphabet=5)
        result = solve_naive(instance)
        assert result.max_certified_bound < 1.0

    def test_double_fix_rejected(self):
        instance = _rank4_instance(alphabet=5)
        fixer = NaiveRankRFixer(instance)
        name = instance.variables[0].name
        fixer.fix_variable(name)
        with pytest.raises(PStarViolationError):
            fixer.fix_variable(name)

    def test_weighted_budget_shrinks(self):
        instance = _rank4_chain_instance(alphabet=5)
        fixer = NaiveRankRFixer(instance)
        result = fixer.run()
        # Every step's weighted total was at most the (shrinking) budget.
        for step in result.steps:
            assert step.slack >= -1e-9

    def test_step_records_cover_all_ranks(self):
        instance = _rank4_chain_instance(alphabet=5)
        result = solve_naive(instance)
        arities = {len(step.events) for step in result.steps}
        assert 4 in arities
