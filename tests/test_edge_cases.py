"""Edge cases and failure injection across the library.

Degenerate structures (single-value variables, impossible events,
disconnected graphs), numerical stress (extreme skew, boundary triples),
and misuse detection.
"""

import math
import random

import pytest

from repro.core import (
    Rank2Fixer,
    Rank3Fixer,
    solve,
    solve_distributed,
    solve_rank2,
    solve_rank3,
)
from repro.errors import (
    CriterionViolationError,
    NoGoodValueError,
    NotRepresentableError,
)
from repro.geometry import (
    boundary_surface,
    decompose_triple,
    is_representable_triple,
)
from repro.lll import LLLInstance, verify_solution
from repro.probability import BadEvent, DiscreteVariable, PartialAssignment


class TestDegenerateVariables:
    def test_single_value_variable(self):
        """A constant 'random' variable: Inc is always 1."""
        constant = DiscreteVariable("c", (0,))
        coins = [DiscreteVariable.fair_coin(f"x{i}") for i in range(3)]
        event = BadEvent.all_equal("E", coins + [constant], target=1)
        # Pr[E] = 0: the constant can never equal 1.
        instance = LLLInstance([event])
        result = solve(instance)
        assert verify_solution(instance, result.assignment).ok

    def test_constant_variable_that_matters(self):
        constant = DiscreteVariable("c", (0,))
        coins = [DiscreteVariable.fair_coin(f"x{i}") for i in range(4)]

        def predicate(values):
            return values["c"] == 0 and all(
                values[f"x{i}"] == 1 for i in range(4)
            )

        event = BadEvent("E", coins + [constant], predicate)
        instance = LLLInstance([event])
        result = solve(instance)
        assert verify_solution(instance, result.assignment).ok

    def test_impossible_event_everywhere(self):
        coins = [DiscreteVariable.fair_coin(f"x{i}") for i in range(2)]
        impossible = BadEvent("E", coins, lambda values: False)
        instance = LLLInstance([impossible])
        result = solve(instance)
        assert verify_solution(instance, result.assignment).ok

    def test_certain_event_rejected_by_criterion(self):
        coin = DiscreteVariable.fair_coin("x")
        certain = BadEvent("E", [coin], lambda values: True)
        instance = LLLInstance([certain])
        with pytest.raises(CriterionViolationError):
            solve(instance)

    def test_certain_event_certificate_signals_failure(self):
        """Without the criterion the fixer completes, but its certificate
        (a bound >= 1) correctly reports that nothing is guaranteed."""
        coin = DiscreteVariable.fair_coin("x")
        certain = BadEvent("E", [coin], lambda values: True)
        instance = LLLInstance([certain])
        result = solve(instance, require_criterion=False)
        assert result.max_certified_bound >= 1.0
        assert not verify_solution(instance, result.assignment).ok


class TestDisconnectedInstances:
    def test_disconnected_dependency_graph(self):
        from repro.generators import all_zero_edge_instance, cycle_graph
        import networkx as nx

        graph = nx.disjoint_union(cycle_graph(6), cycle_graph(8))
        instance = all_zero_edge_instance(graph, 3)
        result = solve(instance)
        assert verify_solution(instance, result.assignment).ok

    def test_disconnected_distributed(self):
        from repro.generators import all_zero_edge_instance, cycle_graph
        import networkx as nx

        graph = nx.disjoint_union(cycle_graph(6), cycle_graph(6))
        instance = all_zero_edge_instance(graph, 3)
        result = solve_distributed(instance)
        assert verify_solution(instance, result.assignment).ok

    def test_singleton_event_instance(self):
        coin = DiscreteVariable("x", (0, 1, 2, 3))
        event = BadEvent.all_equal("E", [coin], target=0)
        instance = LLLInstance([event])
        result = solve_distributed(instance)
        assert verify_solution(instance, result.assignment).ok


class TestNumericalStress:
    def test_extreme_skew_distributions(self):
        """Zero-probability mass 1e-6: enormous Inc ratios on the rare path."""
        probabilities = (1e-6, 0.5 - 5e-7, 0.5 - 5e-7)
        from repro.generators import all_zero_edge_instance, cycle_graph

        instance = all_zero_edge_instance(
            cycle_graph(8), 3, probabilities=probabilities
        )
        result = solve(instance)
        assert verify_solution(instance, result.assignment).ok

    def test_near_threshold_rank2(self):
        """p within 2% of 2^-d must still be handled cleanly."""
        # Cycle (d = 2): threshold 1/4. Use p0 = 0.495 per edge variable:
        # p = 0.495^2 = 0.245 < 0.25.
        probabilities = (0.495, 0.505)
        from repro.generators import all_zero_edge_instance, cycle_graph

        instance = all_zero_edge_instance(
            cycle_graph(10), 2, probabilities=probabilities
        )
        result = solve(instance, validate_invariant=True)
        assert verify_solution(instance, result.assignment).ok

    def test_near_threshold_rank3(self):
        """Rank 3 close to the threshold, invariant validated throughout."""
        from repro.generators import all_zero_triple_instance, cyclic_triples

        # d = 4, threshold 1/16 = 0.0625; p0 = 0.39 gives p = 0.0593.
        probabilities = (0.39, 0.305, 0.305)
        instance = all_zero_triple_instance(
            12, cyclic_triples(12), 3, probabilities=probabilities
        )
        result = solve(instance, validate_invariant=True)
        assert verify_solution(instance, result.assignment).ok

    def test_boundary_triples_decompose_repeatedly(self):
        rng = random.Random(0)
        for _ in range(100):
            a = rng.uniform(0, 4)
            b = 4.0 - a  # exactly on the a + b = 4 boundary: f = 0
            decomposition = decompose_triple(a, b, 0.0)
            assert decomposition.max_violation(a, b, 0.0) < 1e-7

    def test_tiny_triples(self):
        assert is_representable_triple(1e-300, 1e-300, 1e-300)
        decomposition = decompose_triple(1e-300, 1e-300, 1e-300)
        assert decomposition.max_violation(1e-300, 1e-300, 1e-300) < 1e-7

    def test_non_representable_rejection_is_clean(self):
        with pytest.raises(NotRepresentableError):
            decompose_triple(3.9, 3.9, 3.9)


class TestThresholdBoundaryBehaviour:
    def test_exactly_at_threshold_certificate_never_lies(self):
        """At p = 2^-d the rank-2 process always completes (the averaging
        argument never gets stuck), but it loses its guarantee — and the
        certificate must say so: whenever a bad event survives, the
        certified bound is >= 1.  Certified bound < 1 implies success."""
        from repro.applications import sinkless_orientation_instance
        from repro.generators import random_regular_graph

        at_threshold_failures = 0
        for seed in range(5):
            graph = random_regular_graph(10, 3, seed=seed)
            instance = sinkless_orientation_instance(graph)
            fixer = Rank2Fixer(instance, require_criterion=False)
            result = fixer.run()
            ok = verify_solution(instance, result.assignment).ok
            if not ok:
                at_threshold_failures += 1
                assert result.max_certified_bound >= 1.0 - 1e-9
            if result.max_certified_bound < 1.0 - 1e-9:
                assert ok
        # The hardness is real: at the threshold the deterministic
        # process does fail on typical instances.
        assert at_threshold_failures > 0

    def test_strictly_below_never_fails(self):
        from repro.generators import all_zero_edge_instance, random_regular_graph

        for seed in range(5):
            graph = random_regular_graph(12, 3, seed=seed)
            instance = all_zero_edge_instance(graph, 3)
            result = solve_rank2(instance)
            assert verify_solution(instance, result.assignment).ok


class TestLargeAlphabet:
    def test_many_valued_variables(self):
        from repro.generators import all_zero_edge_instance, cycle_graph

        instance = all_zero_edge_instance(cycle_graph(6), 30)
        result = solve(instance)
        assert verify_solution(instance, result.assignment).ok

    def test_hash_variety_in_names(self):
        """Variable and event names of mixed types coexist."""
        coin_a = DiscreteVariable(("tuple", 1), (0, 1))
        coin_b = DiscreteVariable("string", (0, 1))
        coin_c = DiscreteVariable(42, (0, 1))

        def predicate(values):
            return all(v == 1 for v in values.values())

        event1 = BadEvent("E1", [coin_a, coin_b, coin_c], predicate)
        event2 = BadEvent((2, "E"), [coin_a], lambda v: v[("tuple", 1)] == 1 and False)
        instance = LLLInstance([event1, event2])
        result = solve(instance, require_criterion="local")
        assert verify_solution(instance, result.assignment).ok
