"""Unit tests for repro.geometry.representable (Def. 3.3/3.4, Lemma 3.7)."""

import random

import pytest

from repro.errors import NotRepresentableError
from repro.geometry import (
    boundary_surface,
    decompose_triple,
    is_representable_pair,
    is_representable_triple,
    representability_margin,
    segment_points_inside,
    violates_incurvedness,
)


class TestPairs:
    def test_basic_membership(self):
        assert is_representable_pair(1.0, 1.0)
        assert is_representable_pair(0.0, 2.0)
        assert not is_representable_pair(1.5, 0.6)
        assert not is_representable_pair(-0.1, 0.5, tolerance=1e-12)

    def test_boundary(self):
        assert is_representable_pair(0.7, 1.3)


class TestTripleMembership:
    def test_initial_triple(self):
        # All phi = 1 at the start of the algorithm: (1, 1, 1).
        assert is_representable_triple(1.0, 1.0, 1.0)

    def test_figure2_triple(self):
        assert is_representable_triple(0.25, 1.5, 0.1)

    def test_extremes(self):
        assert is_representable_triple(0.0, 0.0, 4.0)
        assert is_representable_triple(4.0, 0.0, 0.0)
        assert not is_representable_triple(4.0, 0.1, 0.0, tolerance=1e-12)
        assert not is_representable_triple(2.0, 2.0, 0.1, tolerance=1e-12)

    def test_negative_coordinates_rejected(self):
        assert not is_representable_triple(-0.5, 1.0, 1.0, tolerance=1e-12)

    def test_characterisation_matches_boundary(self):
        rng = random.Random(0)
        for _ in range(300):
            a = rng.uniform(0, 4)
            b = rng.uniform(0, 4 - a)
            limit = boundary_surface(a, b)
            assert is_representable_triple(a, b, limit)
            if limit > 1e-6:
                assert is_representable_triple(a, b, limit - 1e-7)
            assert not is_representable_triple(
                a, b, limit + 1e-6, tolerance=1e-9
            )

    def test_permutation_symmetry(self):
        rng = random.Random(1)
        for _ in range(300):
            point = (
                rng.uniform(0, 4.5),
                rng.uniform(0, 4.5),
                rng.uniform(0, 4.5),
            )
            results = {
                is_representable_triple(*perm, tolerance=1e-7)
                for perm in (
                    point,
                    (point[1], point[2], point[0]),
                    (point[2], point[0], point[1]),
                    (point[0], point[2], point[1]),
                )
            }
            assert len(results) == 1

    def test_downward_closed(self):
        rng = random.Random(2)
        for _ in range(200):
            a = rng.uniform(0, 4)
            b = rng.uniform(0, 4 - a)
            c = rng.uniform(0, boundary_surface(a, b))
            shrink = rng.uniform(0, 1)
            assert is_representable_triple(a * shrink, b, c)
            assert is_representable_triple(a, b * shrink, c)
            assert is_representable_triple(a, b, c * shrink)


class TestMargin:
    def test_positive_inside(self):
        assert representability_margin(1.0, 1.0, 0.5) > 0

    def test_negative_outside(self):
        assert representability_margin(2.0, 2.0, 1.0) < 0
        assert representability_margin(5.0, 0.0, 0.0) < 0

    def test_zero_component_is_boundary(self):
        assert representability_margin(0.0, 1.0, 1.0) == 0.0

    def test_consistent_with_membership(self):
        rng = random.Random(3)
        for _ in range(500):
            point = (
                rng.uniform(0, 4.5),
                rng.uniform(0, 4.5),
                rng.uniform(0, 4.5),
            )
            margin = representability_margin(*point)
            member = is_representable_triple(*point, tolerance=1e-9)
            if margin > 1e-9:
                assert member
            if margin < -1e-9:
                assert not member


class TestDecomposition:
    def _check(self, a, b, c):
        decomposition = decompose_triple(a, b, c)
        assert decomposition.max_violation(a, b, c) < 1e-7

    def test_figure2(self):
        self._check(0.25, 1.5, 0.1)

    def test_initial_state(self):
        self._check(1.0, 1.0, 1.0)

    def test_axis_cases(self):
        self._check(0.0, 0.0, 4.0)
        self._check(0.0, 2.0, 2.0)
        self._check(2.0, 0.0, 1.0)
        self._check(0.0, 0.0, 0.0)

    def test_diagonal(self):
        self._check(1.5, 1.5, 0.25)
        self._check(2.0, 2.0, 0.0)

    def test_boundary_surface_points(self):
        rng = random.Random(4)
        for _ in range(200):
            a = rng.uniform(0, 4)
            b = rng.uniform(0, 4 - a)
            self._check(a, b, boundary_surface(a, b))

    def test_random_interior(self):
        rng = random.Random(5)
        for _ in range(500):
            a = rng.uniform(0, 4)
            b = rng.uniform(0, 4 - a)
            c = rng.uniform(0, boundary_surface(a, b))
            self._check(a, b, c)

    def test_rejects_outside(self):
        with pytest.raises(NotRepresentableError):
            decompose_triple(2.0, 2.0, 0.5)
        with pytest.raises(NotRepresentableError):
            decompose_triple(5.0, 0.0, 0.0)

    def test_edge_sums_within_budget(self):
        decomposition = decompose_triple(0.8, 1.1, 0.6)
        for total in decomposition.edge_sums():
            assert total <= 2.0 + 1e-9

    def test_products_match_exactly_on_surface(self):
        a, b = 1.0, 2.0
        c = boundary_surface(a, b)
        decomposition = decompose_triple(a, b, c)
        pa, pb, pc = decomposition.products()
        assert pa == pytest.approx(a, abs=1e-9)
        assert pb == pytest.approx(b, abs=1e-9)
        assert pc == pytest.approx(c, abs=1e-9)


class TestIncurvedness:
    """Lemma 3.7: no segment between two outside points enters S_rep."""

    def _random_outside(self, rng):
        while True:
            point = (
                rng.uniform(0, 4.5),
                rng.uniform(0, 4.5),
                rng.uniform(0, 4.5),
            )
            if not is_representable_triple(*point, tolerance=1e-9):
                return point

    def test_no_violations_on_random_segments(self):
        rng = random.Random(6)
        for _ in range(400):
            s = self._random_outside(rng)
            s_prime = self._random_outside(rng)
            assert not violates_incurvedness(s, s_prime)

    def test_segment_points_inside_for_inside_endpoint(self):
        inside = (1.0, 1.0, 0.5)
        outside = (2.0, 2.0, 1.0)
        weights = segment_points_inside(outside, inside)
        assert 0.0 in weights  # q = 0 is the inside endpoint
        assert 1.0 not in weights

    def test_violation_detection_sanity(self):
        # A hand-made *convex-like* set check: using the real S_rep the
        # detector must never fire even for boundary-hugging segments.
        rng = random.Random(7)
        for _ in range(100):
            a = rng.uniform(0.2, 3.8)
            b = rng.uniform(0.1, 4 - a)
            c = boundary_surface(a, b) + 1e-4
            s = (a, b, c)
            a2 = rng.uniform(0.2, 3.8)
            b2 = rng.uniform(0.1, 4 - a2)
            c2 = boundary_surface(a2, b2) + 1e-4
            s_prime = (a2, b2, c2)
            assert not violates_incurvedness(s, s_prime, num_samples=201)
