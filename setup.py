"""Legacy setup shim.

The environment ships setuptools without the ``wheel`` package, so the
PEP-517 editable path (which needs ``bdist_wheel``) is unavailable; this
file enables the classic ``pip install -e .`` develop-mode install.  All
metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
