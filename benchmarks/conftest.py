"""Shared infrastructure for the benchmark harness.

Every bench module reproduces one experiment row of DESIGN.md.  The
``emit`` fixture prints the experiment's table (the "rows the paper
reports") and persists the records as JSON under ``benchmarks/results/``
so EXPERIMENTS.md can be regenerated from artifacts.
"""

from __future__ import annotations

import os
from typing import Sequence

import pytest

from repro.analysis import ExperimentRecord, records_to_table, write_records_json

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture
def emit():
    """Return a callable that prints and persists experiment records."""

    def _emit(
        experiment: str, records: Sequence[ExperimentRecord], title: str
    ) -> None:
        os.makedirs(RESULTS_DIR, exist_ok=True)
        table = records_to_table(records, title=f"[{experiment}] {title}")
        print("\n" + table)
        write_records_json(
            records, os.path.join(RESULTS_DIR, f"{experiment}.json")
        )

    return _emit
