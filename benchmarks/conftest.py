"""Shared infrastructure for the benchmark harness.

Every bench module reproduces one experiment row of DESIGN.md.  The
``emit`` fixture prints the experiment's table (the "rows the paper
reports") and persists the records as JSON under ``benchmarks/results/``
so EXPERIMENTS.md can be regenerated from artifacts; the result-writing
itself lives in ``_obs_harness.py``, which also stamps every artifact
with wall-clock and environment metadata.

Passing ``--obs-trace PATH`` installs a session-wide
:class:`repro.obs.Recorder` writing structured JSONL events, so any
benchmark's instrumented runs (fixing steps, LOCAL rounds, coloring
phases...) can be inspected afterwards with ``python -m repro stats``.
"""

from __future__ import annotations

from typing import Optional, Sequence

import pytest

import _obs_harness
from repro.analysis import ExperimentRecord

RESULTS_DIR = _obs_harness.RESULTS_DIR


def pytest_addoption(parser):
    parser.addoption(
        "--obs-trace",
        action="store",
        default=None,
        metavar="PATH",
        help="record a structured JSONL observability trace of the "
        "benchmark session to PATH (inspect with `python -m repro stats`)",
    )


@pytest.fixture(scope="session", autouse=True)
def obs_session(request):
    """Session-wide recorder when ``--obs-trace`` is given (else a no-op)."""
    path = request.config.getoption("--obs-trace")
    if not path:
        yield None
        return
    from repro.obs import JsonlSink, Recorder, install, uninstall

    recorder = install(Recorder(sinks=[JsonlSink(path)]))
    try:
        yield recorder
    finally:
        uninstall()
        recorder.close()


@pytest.fixture
def emit():
    """Return a callable that prints and persists experiment records."""

    def _emit(
        experiment: str,
        records: Sequence[ExperimentRecord],
        title: str,
        wall_seconds: Optional[float] = None,
    ) -> None:
        _obs_harness.write_experiment(
            experiment, records, title, wall_seconds=wall_seconds
        )

    return _emit
