"""[X1] Ablations: fixing-order sensitivity and the value-selection rule.

Two ablations on the design choices DESIGN.md calls out:

* **Order sensitivity.**  Theorems 1.1/1.3 promise success for *every*
  order.  We run construction, reversed, interleaved, random and the two
  adaptive-pressure adversaries on the same workloads and compare the
  tightest certified bound each leaves behind — all must succeed; the
  max-pressure adversary should leave the system most stressed (largest
  bound), quantifying why the bookkeeping has to be order-oblivious.

* **Selection-rule ablation.**  The rank-3 fixer picks the non-evil value
  with the *largest* margin.  A greedier rule — pick the value minimising
  the sum of increases, ignoring the geometry — can step outside S_rep
  and break property P*; we count how often a geometry-blind rule would
  have chosen an evil value that the principled rule avoided.
"""

from __future__ import annotations

import random

from repro.analysis import ExperimentRecord
from repro.core import (
    Rank3Fixer,
    lexicographic_chooser,
    max_pressure_chooser,
    min_pressure_chooser,
    run_with_adversary,
    solve,
)
from repro.core.sequential import construction_order, interleaved_order, reversed_order
from repro.generators import all_zero_triple_instance, cyclic_triples
from repro.geometry import representability_margin
from repro.lll import verify_solution


def _instance():
    return all_zero_triple_instance(18, cyclic_triples(18), 5)


def run_order_ablation():
    strategies = [
        ("construction", lambda i: solve(i, order=construction_order(i))),
        ("reversed", lambda i: solve(i, order=reversed_order(i))),
        ("interleaved", lambda i: solve(i, order=interleaved_order(i, 3))),
        (
            "random",
            lambda i: solve(
                i,
                order=sorted(
                    construction_order(i),
                    key=lambda name: random.Random(5).random() * hash(name) % 1,
                ),
            ),
        ),
        ("adversary:max-pressure", lambda i: solve(i, chooser=max_pressure_chooser)),
        ("adversary:min-pressure", lambda i: solve(i, chooser=min_pressure_chooser)),
        ("adversary:lexicographic", lambda i: solve(i, chooser=lexicographic_chooser)),
    ]
    rows = []
    for name, runner in strategies:
        instance = _instance()
        result = runner(instance)
        rows.append(
            {
                "ablation": "order",
                "strategy": name,
                "ok": verify_solution(instance, result.assignment).ok,
                "max_certified_bound": result.max_certified_bound,
                "min_slack": result.min_slack,
            }
        )
    return rows


def run_selection_rule_ablation():
    """Count steps where the geometry-blind rule would pick an evil value."""
    instance = _instance()
    fixer = Rank3Fixer(instance)
    blind_evil_choices = 0
    steps = 0
    for variable in instance.variables:
        events = instance.events_of_variable(variable.name)
        if len(events) == 3:
            u, v, w = (event.name for event in events)
            a = fixer.pstar.value(u, v, u) * fixer.pstar.value(u, w, u)
            b = fixer.pstar.value(u, v, v) * fixer.pstar.value(v, w, v)
            c = fixer.pstar.value(u, w, w) * fixer.pstar.value(v, w, w)
            # The geometry-blind choice: minimise the plain increase sum.
            best_blind, best_total = None, float("inf")
            for value, _prob in variable.support_items():
                incs = [
                    event.conditional_increase(
                        fixer.assignment, variable, value
                    )
                    for event in events
                ]
                total = sum(incs)
                if total < best_total:
                    best_total, best_blind = total, (value, incs)
            _value, incs = best_blind
            margin = representability_margin(
                incs[0] * a, incs[1] * b, incs[2] * c
            )
            if margin < -1e-9:
                blind_evil_choices += 1
            steps += 1
        fixer.fix_variable(variable.name)
    result = fixer.run(order=())
    return {
        "ablation": "selection-rule",
        "strategy": "geometry-blind min-sum (hypothetical)",
        "ok": verify_solution(instance, result.assignment).ok,
        "max_certified_bound": result.max_certified_bound,
        "min_slack": float(blind_evil_choices),  # reused column: evil picks
        "steps": steps,
        "blind_evil_choices": blind_evil_choices,
    }


def test_ablation_orders(benchmark, emit):
    rows = benchmark.pedantic(run_order_ablation, rounds=1, iterations=1)
    selection = run_selection_rule_ablation()
    records = [
        ExperimentRecord(
            "X1", {"ablation": row["ablation"], "strategy": row["strategy"]}, row
        )
        for row in rows + [selection]
    ]
    emit("X1", records, "Ablations: fixing orders and value-selection rule")

    for row in rows:
        assert row["ok"]  # every order succeeds (the theorems' promise)
        assert row["max_certified_bound"] < 1.0
    assert selection["ok"]
