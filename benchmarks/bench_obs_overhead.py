"""[E5] Observability overhead: the disabled path must cost (almost) nothing.

The obs plane's founding constraint (docs/observability.md) is that
instrumented hot paths pay one ``active() is None`` check when recording
is off.  This bench holds the plane to that number on the headline
rank-3 workload, three ways:

* ``off`` — the instrumented library with no recorder installed: the
  production path whose overhead must stay under ``OFF_OVERHEAD_BAR``.
* ``on`` — the same solve recording a full JSONL trace (spans, worker
  shards, counter summaries).  The slowdown is reported, the trace must
  be schema-valid, and with the process scheduler every worker chunk
  must be attributed (``worker_id``) in the merged trace.
* ``probe`` — a microbenchmark of the disabled-path check itself.  The
  off-mode *estimate* multiplies the measured per-check cost by a 3x
  cushion of the event count an enabled run emits (an upper bound on
  the number of guarded sites a run executes) and must stay under the
  2% bar.  This is the honest version of "obs off is free": the bar is
  checked against a measured per-site cost, not against run-to-run
  timing noise, which on CI machines exceeds 2% by itself.

Quick mode (``OBS_BENCH_QUICK=1``, used by the CI perf-gate job)
shrinks the workload; the bars are unchanged.
"""

from __future__ import annotations

import os
import tempfile
import time

import _obs_harness
from repro.core import Rank3Fixer
from repro.generators import all_zero_triple_instance, cyclic_triples
from repro.obs import check_events, read_trace
from repro.obs.recorder import active as obs_active, recording
from repro.runtime import ProcessScheduler, SerialScheduler
from repro.runtime.plan import plan_for_instance

QUICK = os.environ.get("OBS_BENCH_QUICK") == "1"

#: Timing repetitions per mode; the fastest is kept.
REPEATS = 2 if QUICK else 3

#: Headline workload size (rank-3 cyclic triples, alphabet 8).
N = 36 if QUICK else 120

#: The disabled path's estimated overhead bar, in percent.
OFF_OVERHEAD_BAR = 2.0

#: Iterations of the ``active()``-check microbenchmark.
PROBE_ITERATIONS = 200_000 if QUICK else 1_000_000


def _build_instance():
    return all_zero_triple_instance(N, cyclic_triples(N), 8)


def _solve(scheduler):
    instance = _build_instance()
    plan = plan_for_instance(instance)
    fixer = Rank3Fixer(instance)
    _obs_harness.reset_engine([instance])
    start = time.perf_counter()
    scheduler.execute(fixer, plan, instance)
    return fixer.run(order=()), time.perf_counter() - start


def _best_of(make_scheduler, repeats=REPEATS):
    best = None
    result = None
    for _ in range(repeats):
        result, elapsed = _solve(make_scheduler())
        if best is None or elapsed < best:
            best = elapsed
    return result, best


def _probe_check_ns():
    """Measured cost of one disabled-path ``active() is None`` check.

    The loop body *is* the instrumentation pattern; loop bookkeeping is
    included, making the per-check figure a conservative overestimate.
    """
    assert obs_active() is None, "probe must run with obs off"
    start = time.perf_counter_ns()
    for _ in range(PROBE_ITERATIONS):
        if obs_active() is not None:  # pragma: no cover - obs is off
            raise AssertionError("recorder appeared mid-probe")
    return (time.perf_counter_ns() - start) / PROBE_ITERATIONS


def run_obs_overhead():
    rows = []
    # Mode: off — the production path.
    reference, off_seconds = _best_of(SerialScheduler)
    rows.append(
        {
            "mode": "off",
            "n": N,
            "best_seconds": round(off_seconds, 6),
            "on_vs_off": 1.0,
        }
    )

    # Mode: on — full JSONL trace of the serial solve.
    events_on = None
    with tempfile.TemporaryDirectory() as scratch:
        trace_path = os.path.join(scratch, "on.jsonl")
        best = None
        for _ in range(REPEATS):
            with recording(path=os.path.join(scratch, "scratch.jsonl")):
                _, elapsed = _solve(SerialScheduler())
            if best is None or elapsed < best:
                best = elapsed
        with recording(path=trace_path):
            result_on, _ = _solve(SerialScheduler())
        events = read_trace(trace_path)
        events_on = check_events(events)
        identical = (
            result_on.assignment.as_dict() == reference.assignment.as_dict()
        )
        rows.append(
            {
                "mode": "on",
                "n": N,
                "best_seconds": round(best, 6),
                "on_vs_off": round(best / off_seconds, 3)
                if off_seconds
                else None,
                "events": events_on,
                "trace_ok": True,
                "identical_to_serial": identical,
            }
        )

        # Mode: on-process — the cross-process trace with worker shards.
        proc_path = os.path.join(scratch, "process.jsonl")
        with recording(path=proc_path):
            result_proc, proc_seconds = _solve(
                ProcessScheduler(max_workers=2, min_dispatch_ops=1)
            )
        proc_events = read_trace(proc_path)
        check_events(proc_events)
        workers = sorted(
            {
                event["worker_id"]
                for event in proc_events
                if event.get("worker_id")
            }
        )
        dispatches = sum(
            1 for event in proc_events if event["event"] == "dispatch"
        )
        rows.append(
            {
                "mode": "on-process",
                "n": N,
                "best_seconds": round(proc_seconds, 6),
                "workers_attributed": len(workers),
                "dispatches": dispatches,
                "trace_ok": True,
                "identical_to_serial": (
                    result_proc.assignment.as_dict()
                    == reference.assignment.as_dict()
                ),
            }
        )

    # Mode: probe — the honest disabled-path estimate.
    check_ns = _probe_check_ns()
    estimated_pct = (
        3 * events_on * check_ns / (off_seconds * 1e9) * 100.0
        if off_seconds
        else 0.0
    )
    rows.append(
        {
            "mode": "probe",
            "n": N,
            "check_ns": round(check_ns, 2),
            "estimated_off_pct": round(estimated_pct, 4),
            "within_bar": estimated_pct < OFF_OVERHEAD_BAR,
        }
    )
    return rows


def test_obs_overhead(benchmark, emit):
    rows, wall = _obs_harness.timed(
        lambda: benchmark.pedantic(run_obs_overhead, rounds=1, iterations=1)
    )
    records = _obs_harness.rows_to_records(
        "E5", rows, parameter_keys=("mode",)
    )
    emit(
        "E5",
        records,
        "Observability overhead: off path, on path, worker shards",
        wall_seconds=wall,
    )

    by_mode = {row["mode"]: row for row in rows}
    assert by_mode["probe"]["within_bar"], (
        f"disabled-path overhead estimate "
        f"{by_mode['probe']['estimated_off_pct']}% exceeds the "
        f"{OFF_OVERHEAD_BAR}% bar"
    )
    assert by_mode["on"]["trace_ok"] and by_mode["on"]["events"] > 0
    assert by_mode["on"]["identical_to_serial"], (
        "recording changed the serial transcript"
    )
    assert by_mode["on-process"]["identical_to_serial"], (
        "recording changed the process-backend transcript"
    )
    assert by_mode["on-process"]["workers_attributed"] > 0, (
        "merged process trace attributes no worker shards"
    )
