"""[X5] The symmetry-breaking substrate: Linial + Kuhn-Wattenhofer.

The `O(poly d + log* n)` shape of the paper's corollaries rests on the
coloring substrate.  This bench measures it in isolation:

* Linial phase: rounds grow like log* of the identifier space —
  increasing n from 10^2 to 10^12 adds only a handful of rounds — and
  the fixpoint palette is O(d^2);
* reduction phase: Kuhn-Wattenhofer needs O(d log(m/d)) rounds vs the
  greedy eliminator's O(m) — the gap that makes the plateau of T2/T4
  reachable at practical n.
"""

from __future__ import annotations

from repro.analysis import ExperimentRecord, log_star
from repro.coloring import (
    GreedyColorReductionAlgorithm,
    KWColorReductionAlgorithm,
    compute_vertex_coloring,
    fixpoint_palette,
    is_proper_vertex_coloring,
    reduction_schedule,
)
from repro.generators import cycle_graph, random_regular_graph
from repro.local_model import Network

LINIAL_ID_SPACES = (10**2, 10**4, 10**8, 10**12)
LINIAL_DEGREES = (2, 4, 8, 16)
REDUCTION_PALETTES = (100, 1000, 10**6)


def run_linial_shape():
    rows = []
    for id_space in LINIAL_ID_SPACES:
        schedule = reduction_schedule(id_space, 4)
        rows.append(
            {
                "phase": "linial",
                "parameter": f"N={id_space:.0e}",
                "rounds": len(schedule),
                "result_palette": fixpoint_palette(id_space, 4),
                "log_star": log_star(id_space),
            }
        )
    for degree in LINIAL_DEGREES:
        palette = fixpoint_palette(10**9, degree)
        rows.append(
            {
                "phase": "fixpoint",
                "parameter": f"d={degree}",
                "rounds": len(reduction_schedule(10**9, degree)),
                "result_palette": palette,
                "log_star": log_star(10**9),
            }
        )
    return rows


def run_reduction_comparison():
    rows = []
    for palette in REDUCTION_PALETTES:
        kw = KWColorReductionAlgorithm(palette, 9, 8)
        greedy = GreedyColorReductionAlgorithm(palette, 9, 8)
        rows.append(
            {
                "phase": "reduction",
                "parameter": f"m={palette:.0e}",
                "rounds": kw.rounds_needed,
                "result_palette": 9,
                "log_star": greedy.rounds_needed,  # column reuse: greedy rounds
            }
        )
    return rows


def run_end_to_end_coloring():
    rows = []
    for n in (64, 256, 1024):
        graph = random_regular_graph(n, 4, seed=n)
        result = compute_vertex_coloring(Network(graph))
        assert is_proper_vertex_coloring(graph, result.colors)
        rows.append(
            {
                "phase": "end-to-end (d+1 colors)",
                "parameter": f"n={n}",
                "rounds": result.total_rounds,
                "result_palette": result.palette,
                "log_star": log_star(n),
            }
        )
    return rows


def test_coloring_substrate(benchmark, emit):
    rows = benchmark.pedantic(
        lambda: run_linial_shape()
        + run_reduction_comparison()
        + run_end_to_end_coloring(),
        rounds=1,
        iterations=1,
    )
    records = [
        ExperimentRecord(
            "X5", {"phase": row["phase"], "parameter": row["parameter"]}, row
        )
        for row in rows
    ]
    emit("X5", records, "Coloring substrate: Linial + KW shapes")

    linial = [row for row in rows if row["phase"] == "linial"]
    # log*-like: a 10^10-fold increase in the id space adds <= 3 rounds.
    assert linial[-1]["rounds"] - linial[0]["rounds"] <= 3
    fixpoints = [row for row in rows if row["phase"] == "fixpoint"]
    for row in fixpoints:
        degree = int(row["parameter"].split("=")[1])
        assert row["result_palette"] <= (4 * degree + 2) ** 2  # O(d^2)

    reductions = [row for row in rows if row["phase"] == "reduction"]
    for row in reductions:
        kw_rounds = row["rounds"]
        greedy_rounds = row["log_star"]
        assert kw_rounds <= greedy_rounds
    # At m = 10^6 the gap is enormous (O(d log m) vs O(m)).
    assert reductions[-1]["rounds"] < 400
    assert reductions[-1]["log_star"] > 10**5

    end_to_end = [row for row in rows if row["phase"].startswith("end")]
    totals = [row["rounds"] for row in end_to_end]
    assert totals[-1] < 2 * totals[0]  # flat-ish in n
