"""Shared result-writing harness for the benchmark suite.

Every bench module reproduces one experiment row of DESIGN.md and used to
hand-roll the same three steps: build ``ExperimentRecord`` objects from
row dictionaries, print the ASCII table, and dump JSON under
``benchmarks/results/``.  This module centralizes that plumbing and adds
the observability layer on top:

* :func:`rows_to_records` — the row-dict -> record conversion every bench
  copy-pasted;
* :func:`write_experiment` — print + persist ``<ID>.json`` exactly as
  before, and additionally stamp a ``<ID>.meta.json`` side-car with
  wall-clock, environment metadata and (when a recorder is active) the
  per-span breakdown of the run.  The side-car is a JSON *object*, which
  ``repro.analysis.report.load_results`` skips by design, so report
  rendering is unaffected;
* :func:`timed` — a perf_counter wall-clock wrapper for the benches that
  report their own run time.

The ``--obs-trace PATH`` pytest option (see ``conftest.py``) installs a
session-wide recorder, so any bench run can dump its full JSONL event
trace for ``python -m repro stats``.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis import ExperimentRecord, records_to_table, write_records_json
from repro.artifacts import STORE as artifact_store
from repro.obs import active as obs_active
from repro.probability import engine as probability_engine

# REPRO_BENCH_RESULTS_DIR redirects artifact writes (the CI perf gate
# points it at a scratch dir, then diffs against the committed baselines
# with `repro bench compare`).
RESULTS_DIR = os.environ.get("REPRO_BENCH_RESULTS_DIR") or os.path.join(
    os.path.dirname(__file__), "results"
)


def require_native_dtype(array: Any, context: str) -> Any:
    """Fail loudly if a benchmarked array fell back to ``object`` dtype.

    The array substrate's speedups rest on native (fixed-width) dtypes;
    an ``object``-dtype array silently degrades every operation to
    per-element Python calls, which would make a perf bench measure the
    wrong thing while still "passing".  Benches call this on the arrays
    in their timed paths so the fallback is an error, not a slow pass.
    """
    import numpy as np

    if not isinstance(array, np.ndarray):
        raise AssertionError(
            f"{context}: expected a numpy array, got {type(array).__name__}"
        )
    if array.dtype.kind not in "biufc":
        raise AssertionError(
            f"{context}: non-native dtype {array.dtype} (object-dtype "
            f"fallback?); the array substrate must stay on fixed-width "
            f"numeric dtypes"
        )
    return array


def reset_engine(instances: Sequence[Any] = ()) -> None:
    """Reset probability-engine state between solve runs.

    Clears the per-event conditional-probability caches of the given
    instances, zeroes the engine counters, and empties the artifact
    store, so that each benchmarked run starts cold and the counters
    published into the meta side-car describe exactly one run.  (The E7
    bench warms the store *deliberately* between its timed phases and
    manages it by hand.)
    """
    for instance in instances:
        for event in instance.events:
            event.clear_cache()
    probability_engine.reset_stats()
    artifact_store.clear()


def environment_metadata() -> Dict[str, Any]:
    """The environment stamp attached to every persisted experiment."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "argv": sys.argv[:1],
    }


def timed(fn: Callable[[], Any]) -> Tuple[Any, float]:
    """Run ``fn`` and return ``(result, wall_seconds)``."""
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def rows_to_records(
    experiment: str,
    rows: Sequence[Dict[str, Any]],
    parameter_keys: Sequence[str] = (),
) -> List[ExperimentRecord]:
    """Convert row dictionaries to records.

    ``parameter_keys`` name the entries that identify the configuration
    (workload, n, d, ...); everything else lands in ``metrics``.
    """
    records = []
    for row in rows:
        parameters = {key: row[key] for key in parameter_keys if key in row}
        metrics = {
            key: value
            for key, value in row.items()
            if key not in parameter_keys
        }
        records.append(ExperimentRecord(experiment, parameters, metrics))
    return records


def _span_breakdown() -> Optional[List[Dict[str, Any]]]:
    """Per-span stats of the active recorder, if observability is on."""
    recorder = obs_active()
    if recorder is None:
        return None
    from repro.obs import percentile

    breakdown = []
    for (component, name), durations in sorted(
        recorder.span_durations.items()
    ):
        breakdown.append(
            {
                "component": component,
                "span": name,
                "count": len(durations),
                "total_ns": sum(durations),
                "p50_ns": percentile(durations, 50),
                "p95_ns": percentile(durations, 95),
                "p99_ns": percentile(durations, 99),
            }
        )
    return breakdown


def write_experiment(
    experiment: str,
    records: Sequence[ExperimentRecord],
    title: str,
    results_dir: str = RESULTS_DIR,
    wall_seconds: Optional[float] = None,
) -> str:
    """Print the experiment table and persist both artifacts.

    ``<ID>.json`` keeps the exact record-list format the report reader
    consumes; ``<ID>.meta.json`` carries the observability stamp.
    Returns the path of the records artifact.
    """
    os.makedirs(results_dir, exist_ok=True)
    table = records_to_table(records, title=f"[{experiment}] {title}")
    print("\n" + table)
    records_path = os.path.join(results_dir, f"{experiment}.json")
    write_records_json(records, records_path)
    meta: Dict[str, Any] = {
        "experiment": experiment,
        "title": title,
        "written_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "records": len(records),
        "environment": environment_metadata(),
    }
    if wall_seconds is not None:
        meta["wall_seconds"] = wall_seconds
    recorder = obs_active()
    if recorder is not None:
        # Flush engine counter deltas (kernel compiles/queries, cache
        # hit/miss/evictions) and the artifact store's per-tier
        # counters accrued since the last publish, so they appear in
        # the counters dump below.
        probability_engine.publish_stats(recorder)
        artifact_store.publish_stats(recorder)
        meta["obs_run_id"] = recorder.run_id
        spans = _span_breakdown()
        if spans:
            meta["span_breakdown"] = spans
        if recorder.counters:
            meta["counters"] = {
                f"{component}/{name}": value
                for (component, name), value in sorted(
                    recorder.counters.items(), key=repr
                )
            }
    meta_path = os.path.join(results_dir, f"{experiment}.meta.json")
    with open(meta_path, "w", encoding="utf-8") as handle:
        json.dump(meta, handle, indent=2, default=str)
    return records_path
