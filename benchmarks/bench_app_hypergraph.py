"""[A1] Application: rank-3 hypergraph sinkless orientation.

The paper's first application of Theorem 1.3: three orientations of a
rank-3 hypergraph with every node a non-sink in at least two of them.
The bench verifies the criterion arithmetic (p = 3*9^-t - 2*27^-t vs
2^-d), solves sequentially and distributedly on growing hypergraphs, and
cross-checks the domain requirement on every solution.
"""

from __future__ import annotations

from repro.analysis import ExperimentRecord
from repro.applications import (
    hypergraph_sinkless_instance,
    orientations_from_assignment,
)
from repro.applications.hypergraph_sinkless import satisfies_requirement
from repro.core import solve, solve_distributed
from repro.generators import cyclic_triples, partition_rounds_triples
from repro.lll import verify_solution

CYCLIC_SIZES = (12, 24, 48)


def run_cyclic_workloads():
    rows = []
    for n in CYCLIC_SIZES:
        triples = cyclic_triples(n)
        instance = hypergraph_sinkless_instance(n, triples)
        p = instance.max_event_probability
        d = instance.max_dependency_degree

        sequential = solve(instance)
        ok_seq = verify_solution(instance, sequential.assignment).ok
        orientations = orientations_from_assignment(
            triples, sequential.assignment
        )
        domain_seq = satisfies_requirement(n, triples, orientations)

        fresh = hypergraph_sinkless_instance(n, triples)
        distributed = solve_distributed(fresh)
        orientations_dist = orientations_from_assignment(
            triples, distributed.assignment
        )
        domain_dist = satisfies_requirement(n, triples, orientations_dist)

        rows.append(
            {
                "workload": f"cyclic n={n}",
                "p": p,
                "threshold": 2.0**-d,
                "sequential_ok": ok_seq and domain_seq,
                "distributed_ok": domain_dist,
                "rounds": distributed.total_rounds,
            }
        )
    return rows


def run_partition_workload():
    triples = partition_rounds_triples(24, 2, seed=9)
    instance = hypergraph_sinkless_instance(24, triples)
    result = solve(instance, require_criterion="local")
    orientations = orientations_from_assignment(triples, result.assignment)
    return {
        "workload": "partition n=24 t=2",
        "p": instance.max_event_probability,
        "threshold": 2.0**-instance.max_dependency_degree,
        "sequential_ok": satisfies_requirement(24, triples, orientations),
        "distributed_ok": True,
        "rounds": 0,
    }


def test_app_hypergraph(benchmark, emit):
    rows = benchmark.pedantic(run_cyclic_workloads, rounds=1, iterations=1)
    rows.append(run_partition_workload())
    records = [
        ExperimentRecord("A1", {"workload": row["workload"]}, row)
        for row in rows
    ]
    emit("A1", records, "Application: 3 orientations, non-sink in >= 2")

    for row in rows:
        assert row["p"] < row["threshold"]  # strictly below the threshold
        assert row["sequential_ok"]
        assert row["distributed_ok"]
