"""[E2] Scheduler backends on one fix plan: serial vs batch vs process.

The execution plane (``repro.runtime``) promises that every backend is
bit-identical to ``SerialScheduler`` and that the batched backend
amortises decision work across structurally identical fixings.  This
bench measures exactly the phase the backends differ on — executing an
already-built plan through a fresh fixer — on the headline rank-3
cyclic-triples workload and a rank-2 cycle for coverage.  The coloring
and plan construction are deliberately excluded from the timed region:
they are identical across backends, and including them would only
dilute the comparison.

Acceptance bar: on the headline rank-3 workload, ``BatchScheduler``
must be at least 1.5x faster than ``SerialScheduler`` (the class
structure of cyclic triples is highly symmetric, so the memoized
decision cache should serve the overwhelming majority of ops).  The
process backend is reported but has no floor — forking and payload
shipping only pay off for much more expensive per-op decisions, and the
bench exists to keep that trade-off measured, not to pretend it is
always a win.  Quick mode (``SCHEDULER_BENCH_QUICK=1``, used by the CI
perf-smoke job) shrinks the workloads and only requires batch not to be
slower than serial; ``SCHEDULER_BENCH_BACKENDS`` restricts the backend
set (CI runs serial+batch).
"""

from __future__ import annotations

import os
import time

import _obs_harness
from repro.core import Rank2Fixer, Rank3Fixer
from repro.generators import (
    all_zero_edge_instance,
    all_zero_triple_instance,
    cycle_graph,
    cyclic_triples,
)
from repro.lll import verify_solution
from repro.runtime import make_scheduler
from repro.runtime.plan import plan_for_instance

QUICK = os.environ.get("SCHEDULER_BENCH_QUICK") == "1"

BACKENDS = tuple(
    name.strip()
    for name in os.environ.get(
        "SCHEDULER_BENCH_BACKENDS", "serial,batch,process"
    ).split(",")
    if name.strip()
)

#: Timing repetitions per backend; the fastest is kept.
REPEATS = 2 if QUICK else 3

#: Required batch-over-serial speedup on the headline rank-3 workload.
BATCH_SPEEDUP_FLOOR = 1.0 if QUICK else 1.5

WORKLOADS = [
    (
        "rank-2 cycle" + (" (quick)" if QUICK else ""),
        lambda: all_zero_edge_instance(
            cycle_graph(48 if QUICK else 240), 3
        ),
        False,
    ),
    (
        "rank-3 cyclic triples" + (" (quick)" if QUICK else ""),
        lambda: all_zero_triple_instance(
            60 if QUICK else 240,
            cyclic_triples(60 if QUICK else 240),
            8,
        ),
        True,
    ),
]


def _fixer_for(instance):
    if instance.rank <= 2:
        return Rank2Fixer(instance)
    return Rank3Fixer(instance)


def _run_backend(backend, build_instance):
    """Best-of-``REPEATS`` wall time of executing a fresh plan.

    Every repetition gets a fresh instance (cold per-event caches) and a
    fresh fixer; the plan is built outside the timed region.
    """
    best_seconds = None
    result = None
    for _ in range(REPEATS):
        instance = build_instance()
        plan = plan_for_instance(instance)
        fixer = _fixer_for(instance)
        _obs_harness.reset_engine([instance])
        scheduler = make_scheduler(backend)
        start = time.perf_counter()
        scheduler.execute(fixer, plan, instance)
        elapsed = time.perf_counter() - start
        result = fixer.run(order=())
        if best_seconds is None or elapsed < best_seconds:
            best_seconds = elapsed
    return best_seconds, result


def run_scaling():
    rows = []
    for workload, build_instance, is_headline in WORKLOADS:
        reference = None
        serial_seconds = None
        for backend in BACKENDS:
            seconds, result = _run_backend(backend, build_instance)
            ok = verify_solution(build_instance(), result.assignment).ok
            if backend == "serial":
                reference = result
                serial_seconds = seconds
            identical = reference is None or (
                result.assignment.as_dict()
                == reference.assignment.as_dict()
                and result.certified_bounds == reference.certified_bounds
            )
            rows.append(
                {
                    "workload": workload,
                    "headline": is_headline,
                    "backend": backend,
                    "best_seconds": round(seconds, 6),
                    "speedup_vs_serial": (
                        round(serial_seconds / seconds, 3)
                        if serial_seconds
                        else None
                    ),
                    "steps": result.num_steps,
                    "ok": ok,
                    "identical_to_serial": identical,
                }
            )
    return rows


def test_scheduler_scaling(benchmark, emit):
    rows, wall = _obs_harness.timed(lambda: benchmark.pedantic(
        run_scaling, rounds=1, iterations=1
    ))
    records = _obs_harness.rows_to_records(
        "E2", rows, parameter_keys=("workload", "backend")
    )
    emit(
        "E2",
        records,
        "Scheduler backends: serial vs batch vs process",
        wall_seconds=wall,
    )

    for row in rows:
        assert row["ok"], f"invalid solution under {row['backend']}"
        assert row["identical_to_serial"], (
            f"{row['backend']} diverged from serial on {row['workload']}"
        )

    if "batch" in BACKENDS and "serial" in BACKENDS:
        headline = [
            row
            for row in rows
            if row["headline"] and row["backend"] == "batch"
        ]
        assert headline, "headline rank-3 batch row missing"
        for row in headline:
            assert row["speedup_vs_serial"] >= BATCH_SPEEDUP_FLOOR, (
                f"batch speedup {row['speedup_vs_serial']}x below the "
                f"{BATCH_SPEEDUP_FLOOR}x floor on {row['workload']}"
            )
