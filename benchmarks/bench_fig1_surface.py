"""[F1] Figure 1: the surface bounding the set of representable triples.

Regenerates the data behind the paper's Figure 1 — a grid of
``f(a, b) = 4 + (ab - 2a - 2b - sqrt(ab(4-a)(4-b)))/2`` over the triangle
``{a, b >= 0, a + b <= 4}`` — and certifies the two properties the figure
illustrates: the surface is convex (Lemma 3.6, via Hessian minors) and
the region below it, ``S_rep``, is incurved (Lemma 3.7, via random
outside-segment sampling).
"""

from __future__ import annotations

import random

from repro.analysis import ExperimentRecord
from repro.geometry import (
    boundary_surface,
    hessian_minors,
    is_representable_triple,
    surface_grid,
    violates_incurvedness,
)

GRID_RESOLUTION = 40
CONVEXITY_SAMPLES = 2000
INCURVEDNESS_SEGMENTS = 1000


def run_surface_grid():
    """The Figure-1 data: sampled surface heights over the domain."""
    return surface_grid(GRID_RESOLUTION)


def run_convexity_certificate(samples: int = CONVEXITY_SAMPLES):
    """Check Hessian positive-definiteness at random interior points."""
    rng = random.Random(1)
    failures = 0
    min_first = float("inf")
    min_second = float("inf")
    for _ in range(samples):
        a = rng.uniform(1e-3, 3.99)
        b = rng.uniform(1e-3, 3.999 - a)
        first, second = hessian_minors(a, b)
        min_first = min(min_first, first)
        min_second = min(min_second, second)
        if first <= 0 or second <= 0:
            failures += 1
    return failures, min_first, min_second


def run_incurvedness_certificate(segments: int = INCURVEDNESS_SEGMENTS):
    """Sample segments between outside points; count incursions into S_rep."""
    rng = random.Random(2)
    violations = 0
    tested = 0
    while tested < segments:
        s = tuple(rng.uniform(0, 4.5) for _ in range(3))
        s_prime = tuple(rng.uniform(0, 4.5) for _ in range(3))
        if is_representable_triple(*s) or is_representable_triple(*s_prime):
            continue
        tested += 1
        if violates_incurvedness(s, s_prime, num_samples=51):
            violations += 1
    return violations


def test_fig1_surface(benchmark, emit):
    import os

    from repro.analysis import surface_to_csv

    a_values, b_values, f_values = benchmark(run_surface_grid)
    convexity_failures, min_first, min_second = run_convexity_certificate()
    incurvedness_violations = run_incurvedness_certificate()
    # Persist the plottable Figure-1 artifact next to the JSON records.
    results_dir = os.path.join(os.path.dirname(__file__), "results")
    os.makedirs(results_dir, exist_ok=True)
    surface_to_csv(
        os.path.join(results_dir, "F1_surface.csv"), resolution=GRID_RESOLUTION
    )

    records = [
        ExperimentRecord(
            "F1",
            {"artifact": "surface grid", "resolution": GRID_RESOLUTION},
            {
                "points": len(f_values),
                "f_max": max(f_values),
                "f_min": min(f_values),
                "f(0,0)": boundary_surface(0, 0),
                "f(2,2)": boundary_surface(2, 2),
            },
        ),
        ExperimentRecord(
            "F1",
            {"artifact": "convexity (Lemma 3.6)", "samples": CONVEXITY_SAMPLES},
            {
                "minor_failures": convexity_failures,
                "min_first_minor": min_first,
                "min_second_minor": min_second,
            },
        ),
        ExperimentRecord(
            "F1",
            {
                "artifact": "incurvedness (Lemma 3.7)",
                "segments": INCURVEDNESS_SEGMENTS,
            },
            {"violations": incurvedness_violations},
        ),
    ]
    emit("F1", records, "Figure 1: the surface of S_rep and its certificates")

    # Shape assertions mirroring the paper's figure.
    assert max(f_values) == 4.0  # apex at the origin
    assert min(f_values) >= 0.0  # floor on a + b = 4
    assert convexity_failures == 0
    assert incurvedness_violations == 0
