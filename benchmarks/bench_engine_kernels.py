"""[E1] Compiled event kernels vs naive enumeration on T1/T3 workloads.

Runs the same deterministic fixing workloads under both probability
engines (``REPRO_ENGINE=naive|compiled``), asserts the resulting
assignments are identical (the engines are bit-compatible, so this is an
equality check, not a tolerance check), and reports two wall-clock
speedups per workload:

* **cold** — fresh instance per run, so the compiled engine is charged
  its one-time kernel compilation (one full-product predicate
  enumeration per event, the same work the naive engine spends on a
  single unconditioned probability query);
* **warm** — the instance (and its compiled kernels) is reused across
  runs while the per-event conditional-probability caches are cleared
  between runs.  This is the sweep regime the ROADMAP targets: solving
  one instance under many orders/adversaries amortises compilation, and
  every probability query runs against the table.

The acceptance bar is on the warm T3 rank-3 workload: compiled must be
at least 3x faster than naive.  Quick mode (``ENGINE_BENCH_QUICK=1``,
used by the CI perf-smoke job) shrinks the instances and requires
compiled to beat naive, so the job stays fast while still catching a
regression that makes the kernel path slower than the oracle it
replaces.
"""

from __future__ import annotations

import os
import time

import _obs_harness
from repro.core import solve_rank2, solve_rank3
from repro.generators import (
    all_zero_edge_instance,
    all_zero_triple_instance,
    cycle_graph,
    cyclic_triples,
)
from repro.lll import verify_solution
from repro.probability import engine_stats, using_engine

QUICK = os.environ.get("ENGINE_BENCH_QUICK") == "1"

#: Timing repetitions per engine and temperature; the fastest is kept.
REPEATS = 2 if QUICK else 3

#: Required compiled-over-naive speedup on the warm T3 workload.
T3_SPEEDUP_FLOOR = 1.0 if QUICK else 3.0

WORKLOADS = [
    (
        "T1 rank-2 cycle" + (" (quick)" if QUICK else ""),
        lambda: all_zero_edge_instance(cycle_graph(24 if QUICK else 60), 3),
        solve_rank2,
        1.0,
    ),
    (
        "T3 rank-3 cyclic triples" + (" (quick)" if QUICK else ""),
        lambda: all_zero_triple_instance(
            15 if QUICK else 30,
            cyclic_triples(15 if QUICK else 30),
            8,
        ),
        solve_rank3,
        T3_SPEEDUP_FLOOR,
    ),
]


def _best_of(run):
    """Fastest wall time (and last result) of ``REPEATS`` calls."""
    best_seconds = None
    result = None
    for _ in range(REPEATS):
        start = time.perf_counter()
        result = run()
        elapsed = time.perf_counter() - start
        if best_seconds is None or elapsed < best_seconds:
            best_seconds = elapsed
    return result, best_seconds


def _cold_solve(factory, solver, mode):
    """Each repeat rebuilds the instance: kernel compilation is charged."""
    with using_engine(mode):

        def run():
            instance = factory()
            _obs_harness.reset_engine()
            result = solver(instance)
            assert verify_solution(instance, result.assignment).ok
            return result

        return _best_of(run)


def _warm_solve(factory, solver, mode):
    """One instance reused: kernels persist, per-run caches are cleared."""
    with using_engine(mode):
        instance = factory()
        solver(instance)  # warm-up: compiles kernels under `compiled`

        def run():
            _obs_harness.reset_engine([instance])
            result = solver(instance)
            assert verify_solution(instance, result.assignment).ok
            return result

        return _best_of(run)


def run_workload(name, factory, solver, speedup_floor):
    naive_cold, naive_cold_s = _cold_solve(factory, solver, "naive")
    compiled_cold, compiled_cold_s = _cold_solve(factory, solver, "compiled")
    # Counters describe the last cold compiled run (reset per repeat).
    kernel_stats = engine_stats()
    _, naive_warm_s = _warm_solve(factory, solver, "naive")
    _, compiled_warm_s = _warm_solve(factory, solver, "compiled")

    # Differential check: the engines produce the same float stream, so
    # the two runs must choose identical values everywhere.
    assert (
        naive_cold.assignment.as_dict() == compiled_cold.assignment.as_dict()
    ), f"{name}: engines disagree on the solution"
    assert naive_cold.certified_bounds == compiled_cold.certified_bounds

    return {
        "workload": name,
        "naive_cold_s": round(naive_cold_s, 6),
        "compiled_cold_s": round(compiled_cold_s, 6),
        "cold_speedup": round(naive_cold_s / compiled_cold_s, 3),
        "naive_warm_s": round(naive_warm_s, 6),
        "compiled_warm_s": round(compiled_warm_s, 6),
        "warm_speedup": round(naive_warm_s / compiled_warm_s, 3),
        "speedup_floor": speedup_floor,
        "kernel_compiles": kernel_stats["kernel_compiles"],
        "kernel_batch_queries": kernel_stats["kernel_batch_queries"],
    }


def run_all():
    return [
        run_workload(name, factory, solver, floor)
        for name, factory, solver, floor in WORKLOADS
    ]


def test_engine_kernels(emit):
    rows, wall = _obs_harness.timed(run_all)
    records = _obs_harness.rows_to_records("E1", rows, ("workload",))
    emit(
        "E1",
        records,
        "Compiled kernels vs naive enumeration (identical solutions)",
        wall_seconds=wall,
    )

    for row in rows:
        assert row["warm_speedup"] >= row["speedup_floor"], (
            f"{row['workload']}: compiled engine warm speedup "
            f"{row['warm_speedup']}x is below the floor "
            f"{row['speedup_floor']}x"
        )
        # Cold starts include kernel compilation and must still win.
        assert row["cold_speedup"] > 1.0, (
            f"{row['workload']}: compiled engine is slower than naive "
            f"even including compilation ({row['cold_speedup']}x)"
        )
        assert row["kernel_compiles"] > 0
        assert row["kernel_batch_queries"] > 0
