"""[X4] Approaching the threshold from below: how sharp is sharp?

Sweep parity instances (bad event = "XOR of my incident bits is 1",
which no single fixing can kill) whose bit bias ``q`` drives
``p = 2q(1-q)`` toward the threshold ``2^-d = 1/4`` on a cycle.  For
each margin we track the *peak pressure*: the largest certified bound
``p_v * prod(weights)`` observed at any point of the run — the closest
the bookkeeping ever gets to losing its guarantee.

Findings this bench certifies:

* success stays at 100% for every margin > 1 (the theorem is binary),
* the bookkeeping never inflates: the peak pressure equals the initial
  ``p`` — on this family the greedy choice always *reduces* both
  endpoints' bounds — while the per-step slack tightens monotonically
  as the margin vanishes,
* both classical conditions (symmetric ``ep(d+1) < 1`` and even the
  general asymmetric LLL) give up partway through the sweep while the
  exponential criterion — and the fixer — keep going: on this family
  the paper's regime reaches strictly beyond them.
"""

from __future__ import annotations

from repro.analysis import ExperimentRecord
from repro.core import Rank2Fixer
from repro.lll import SymmetricLLLCriterion, asymmetric_criterion_holds
from repro.generators import cycle_graph, parity_edge_instance
from repro.lll import verify_solution

#: Bit biases; p = 2q(1-q) on a cycle reaches the threshold 1/4 at
#: q = (2 - sqrt(2))/4 ~ 0.14645.
Q_SWEEP = (0.02, 0.05, 0.08, 0.11, 0.13, 0.145)
CYCLE_SIZE = 20


def run_sweep():
    rows = []
    symmetric = SymmetricLLLCriterion()
    for q in Q_SWEEP:
        instance = parity_edge_instance(cycle_graph(CYCLE_SIZE), q)
        p = instance.max_event_probability
        d = instance.max_dependency_degree
        fixer = Rank2Fixer(instance)
        peak_pressure = max(fixer.certified_bounds().values())
        for variable in instance.variables:
            fixer.fix_variable(variable.name)
            peak_pressure = max(
                peak_pressure, max(fixer.certified_bounds().values())
            )
        result = fixer.run(order=())
        ok = verify_solution(instance, result.assignment).ok
        rows.append(
            {
                "q": q,
                "p": p,
                "margin_2^-d/p": (2.0**-d) / p,
                "success": ok,
                "peak_certified_bound": peak_pressure,
                "min_step_slack": result.min_slack,
                "symmetric_lll_holds": symmetric.is_satisfied(p, d),
                "asymmetric_lll_holds": asymmetric_criterion_holds(
                    parity_edge_instance(cycle_graph(CYCLE_SIZE), q)
                ),
            }
        )
    return rows


def test_margin_sweep(benchmark, emit):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    records = [ExperimentRecord("X4", {"q": row["q"]}, row) for row in rows]
    emit("X4", records, "Approaching p = 2^-d from below (parity events)")

    # Success is binary: 100% everywhere strictly below the threshold.
    assert all(row["success"] for row in rows)
    # The margin shrinks toward 1 along the sweep...
    margins = [row["margin_2^-d/p"] for row in rows]
    assert margins == sorted(margins, reverse=True)
    assert margins[-1] < 1.01
    # The bookkeeping never inflates above the initial probability: the
    # greedy choice reduces both endpoints' bounds on parity events.
    for row in rows:
        assert row["peak_certified_bound"] <= row["p"] + 1e-9
    # Per-step slack tightens monotonically as the margin shrinks.
    slacks = [row["min_step_slack"] for row in rows]
    assert slacks == sorted(slacks, reverse=True)
    # Both classical conditions give up inside the sweep; the exponential
    # criterion (and the fixer) keep going — the paper's regime reaches
    # beyond them on this family.
    assert not all(row["symmetric_lll_holds"] for row in rows)
    assert any(row["symmetric_lll_holds"] for row in rows)
    assert not all(row["asymmetric_lll_holds"] for row in rows)
