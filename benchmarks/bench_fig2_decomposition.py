"""[F2] Figure 2: decomposing representable triples into edge values.

The paper's Figure 2 exhibits the triple (1/4, 3/2, 1/10) together with
witness values a1, a2, b1, b3, c2, c3 on the triangle's edges.  This
bench regenerates that witness with the constructive proof of Lemma 3.5
and sweeps the whole boundary surface, decomposing every sampled triple
and reporting the worst constraint violation (which must be float dust).
"""

from __future__ import annotations

import random

from repro.analysis import ExperimentRecord
from repro.geometry import boundary_surface, decompose_triple

FIGURE2_TRIPLE = (0.25, 1.5, 0.1)
SWEEP_SAMPLES = 2000


def run_figure2_decomposition():
    """Decompose the exact triple illustrated in the paper's Figure 2."""
    return decompose_triple(*FIGURE2_TRIPLE)


def run_boundary_sweep(samples: int = SWEEP_SAMPLES):
    """Decompose random triples on and below the surface."""
    rng = random.Random(3)
    worst_violation = 0.0
    count_boundary = 0
    for index in range(samples):
        a = rng.uniform(0, 4)
        b = rng.uniform(0, 4 - a)
        limit = boundary_surface(a, b)
        if index % 2 == 0:
            c = limit  # exactly on the surface: the worst case
            count_boundary += 1
        else:
            c = rng.uniform(0, limit)
        decomposition = decompose_triple(a, b, c)
        worst_violation = max(
            worst_violation, decomposition.max_violation(a, b, c)
        )
    return worst_violation, count_boundary


def test_fig2_decomposition(benchmark, emit):
    decomposition = benchmark(run_figure2_decomposition)
    worst_violation, boundary_count = run_boundary_sweep()

    products = decomposition.products()
    records = [
        ExperimentRecord(
            "F2",
            {"triple": str(FIGURE2_TRIPLE)},
            {
                "a1": decomposition.a1,
                "a2": decomposition.a2,
                "b1": decomposition.b1,
                "b3": decomposition.b3,
                "c2": decomposition.c2,
                "c3": decomposition.c3,
                "violation": decomposition.max_violation(*FIGURE2_TRIPLE),
            },
        ),
        ExperimentRecord(
            "F2",
            {"triple": "random sweep", "samples": SWEEP_SAMPLES},
            {
                "boundary_cases": boundary_count,
                "worst_violation": worst_violation,
            },
        ),
    ]
    emit("F2", records, "Figure 2: constructive decompositions")

    # The figure's triple must decompose exactly (a1*a2 = 1/4 etc.).
    assert abs(products[0] - FIGURE2_TRIPLE[0]) < 1e-9
    assert abs(products[1] - FIGURE2_TRIPLE[1]) < 1e-9
    assert abs(products[2] - FIGURE2_TRIPLE[2]) < 1e-9
    assert worst_violation < 1e-7
