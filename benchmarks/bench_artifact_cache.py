"""[E7] Artifact cache: warm same-shape one-shot solves vs cold.

The service-shaped workload the artifact plane exists for: requests
arrive as *fresh* instance objects of a recurring shape, and each is
solved once.  Without the cache every request pays plan coloring,
kernel compilation and template lowering from scratch; with it, the
second same-shape request finds all of those in the process-global
store by structural fingerprint.

Workload: the E6 scale configuration — a rank-2 all-zero cycle at
n = 10^6 (quick mode, ``ARTIFACT_BENCH_QUICK=1``, shrinks it to
n = 2*10^4), solved with ``plan_for_instance`` + ``Rank2Fixer`` + the
serial scheduler.  Instance construction happens *outside* the timed
region (it is the request payload, not derived work); the timed
region is exactly the one-shot solve: plan + fixer + execute.

Phases:

* ``cold`` — artifacts on, store cleared before every repetition;
* ``warm`` — artifacts on, store carried over from a cold solve; every
  repetition solves a *fresh* instance of the same shape;
* ``oracle`` — ``REPRO_ARTIFACTS=off``, the legacy path.

Acceptance bar: warm must be at least 5x faster than cold (2.5x in
quick mode, sized for noisy CI runners), the warm solve's store hit
rate must be at least 90%, and all three transcripts (assignment,
steps, phi ledger) must be exactly equal.  Verification runs outside
the timed region.
"""

from __future__ import annotations

import os
import time

import _obs_harness
from repro.artifacts import STORE, using_artifacts
from repro.core import Rank2Fixer
from repro.generators import all_zero_edge_instance, cycle_graph
from repro.lll import verify_solution
from repro.runtime import make_scheduler
from repro.runtime.plan import plan_for_instance

QUICK = os.environ.get("ARTIFACT_BENCH_QUICK") == "1"

#: Timing repetitions per phase; the fastest is kept.
REPEATS = 3 if QUICK else 2

#: Required warm-over-cold speedup of the one-shot solve.
SPEEDUP_FLOOR = 2.5 if QUICK else 5.0

#: Required store hit rate on the warm solve.
HIT_RATE_FLOOR = 0.9

#: The E6 scale configuration (rank-2 all-zero cycle, alphabet 3).
SCALE_N = 20_000 if QUICK else 1_000_000


def _one_shot(instance):
    """The timed region: plan + fixer + execute on a built instance."""
    start = time.perf_counter()
    plan = plan_for_instance(instance)
    plan_seconds = time.perf_counter() - start
    fixer = Rank2Fixer(instance)
    make_scheduler("serial").execute(fixer, plan, instance)
    return time.perf_counter() - start, plan_seconds, fixer


def _transcript(fixer):
    return (
        fixer.assignment.as_dict(),
        fixer.steps,
        fixer.certified_bounds(),
    )


def _measure(prepare):
    """Best-of-``REPEATS`` one-shot solves over fresh instances.

    ``prepare`` runs before each repetition, outside the timed region
    (store management and instance construction).
    """
    best = None
    best_plan = None
    fixer = None
    instance = None
    for _ in range(REPEATS):
        instance = prepare()
        elapsed, plan_seconds, fixer = _one_shot(instance)
        if best is None or elapsed < best:
            best = elapsed
            best_plan = plan_seconds
    return best, best_plan, fixer, instance


def _build():
    return all_zero_edge_instance(cycle_graph(SCALE_N), 3)


def _hit_rate(before, after):
    hits = after["hits"] - before["hits"]
    misses = after["misses"] - before["misses"]
    total = hits + misses
    return hits / total if total else 0.0


def _run_phases():
    rows = []
    transcripts = {}

    with using_artifacts("on"):
        def cold_prepare():
            instance = _build()
            _obs_harness.reset_engine([instance])  # clears the store too
            return instance

        cold_seconds, cold_plan, fixer, instance = _measure(cold_prepare)
        transcripts["cold"] = _transcript(fixer)
        cold_ok = verify_solution(instance, fixer.assignment).ok

        # Warm: the store stays populated from the last cold solve;
        # each repetition still solves a brand-new instance object.
        warm_before = STORE.totals()
        warm_seconds, warm_plan, fixer, instance = _measure(_build)
        warm_after = STORE.totals()
        transcripts["warm"] = _transcript(fixer)
        warm_ok = verify_solution(instance, fixer.assignment).ok
        hit_rate = _hit_rate(warm_before, warm_after)

    with using_artifacts("off"):
        def oracle_prepare():
            instance = _build()
            _obs_harness.reset_engine([instance])
            return instance

        oracle_seconds, oracle_plan, fixer, instance = _measure(
            oracle_prepare
        )
        transcripts["oracle"] = _transcript(fixer)
        oracle_ok = verify_solution(instance, fixer.assignment).ok

    identical = (
        transcripts["cold"] == transcripts["warm"] == transcripts["oracle"]
    )
    speedup = cold_seconds / warm_seconds
    suffix = " (quick)" if QUICK else ""
    rows.append(
        {
            "phase": f"cold n={SCALE_N}{suffix}",
            "best_seconds": round(cold_seconds, 6),
            "plan_seconds": round(cold_plan, 6),
            "ok": cold_ok,
            "identical": identical,
        }
    )
    rows.append(
        {
            "phase": f"warm n={SCALE_N}{suffix}",
            "best_seconds": round(warm_seconds, 6),
            "plan_seconds": round(warm_plan, 6),
            "speedup_vs_cold": round(speedup, 3),
            "hit_rate": round(hit_rate, 4),
            "hit_rate_ok": hit_rate >= HIT_RATE_FLOOR,
            "ok": warm_ok,
            "identical": identical,
        }
    )
    rows.append(
        {
            "phase": f"oracle (artifacts off) n={SCALE_N}{suffix}",
            "best_seconds": round(oracle_seconds, 6),
            "plan_seconds": round(oracle_plan, 6),
            "ok": oracle_ok,
            "identical": identical,
        }
    )
    return rows


def test_artifact_cache(benchmark, emit):
    rows, wall = _obs_harness.timed(
        lambda: benchmark.pedantic(_run_phases, rounds=1, iterations=1)
    )
    records = _obs_harness.rows_to_records(
        "E7", rows, parameter_keys=("phase",)
    )
    emit(
        "E7",
        records,
        "Artifact cache: warm same-shape one-shot solves vs cold",
        wall_seconds=wall,
    )

    for row in rows:
        assert row["ok"], f"invalid solution in phase {row['phase']!r}"
        assert row["identical"], (
            "transcripts diverged between cold/warm/oracle phases"
        )

    warm = [row for row in rows if "speedup_vs_cold" in row]
    assert warm, "warm row missing"
    assert warm[0]["speedup_vs_cold"] >= SPEEDUP_FLOOR, (
        f"warm one-shot speedup {warm[0]['speedup_vs_cold']}x below the "
        f"{SPEEDUP_FLOOR}x floor"
    )
    assert warm[0]["hit_rate_ok"], (
        f"warm store hit rate {warm[0]['hit_rate']} below "
        f"{HIT_RATE_FLOOR}"
    )
