"""[E8] Process-backend IPC planes: zero-copy shm vs pickle vs serial.

The shared-memory execution plane (``repro.runtime.shm``) exists to fix
one measured fact: the pickle-everything process backend ships every
kernel, variable and ledger slice again on every chunk, so it loses to
``SerialScheduler`` outright (E2).  This bench measures the steady
state the plane was designed for — a **warm** scheduler re-executing a
solve (pool up, segment broadcast, worker program caches hot) — and
attributes the win: per-class serialized bytes split into
``pickle_bytes`` vs ``shm_bytes`` + ``descriptor_bytes``, and the
workers' ``worker_warm_hits``.

Bit-identity is asserted on every row (shm == pickle == serial,
assignments and certified bounds), plus a fault-injected shm leg whose
recovery must certify and still match serial exactly.

Acceptance floors are hardware-conditional: the ISSUE 9 headline floors
(shm >= 2x serial, shm >= 4x pickle, warm rank-3) are enforced when the
box has >= 4 CPUs; on smaller boxes true parallel wins are physically
unavailable (E2 precedent: the committed process rows sit at 0.17-0.45x
of serial on 1 CPU), so the gate degrades to the part the plane
controls — shm must beat the pickle oracle — and the waiver is visible
in the committed meta side-car (``cpu_count``).  Quick mode
(``PROCESS_SHM_BENCH_QUICK=1``, the CI perf-gate leg) shrinks the
workloads and keeps the same conditional structure.
"""

from __future__ import annotations

import os
import time

import _obs_harness
from repro.core import Rank2Fixer, Rank3Fixer, certify_recovery
from repro.faults import FaultPlan
from repro.generators import (
    all_zero_edge_instance,
    all_zero_triple_instance,
    cycle_graph,
    cyclic_triples,
)
from repro.lll import verify_solution
from repro.obs.recorder import recording
from repro.runtime import ProcessScheduler, SerialScheduler
from repro.runtime.plan import plan_for_instance

QUICK = os.environ.get("PROCESS_SHM_BENCH_QUICK") == "1"

#: Timing repetitions per backend over the warm scheduler; best kept.
REPEATS = 2 if QUICK else 3

CPUS = os.cpu_count() or 1

#: The ISSUE 9 headline floors need real parallel hardware.
PARALLEL_FLOORS = CPUS >= 4

#: (shm vs serial, shm vs pickle) on the headline rank-3 workload.
if PARALLEL_FLOORS:
    SPEEDUP_FLOORS = (1.5, 2.0) if QUICK else (2.0, 4.0)
else:
    # The plane's own contribution is IPC cost, not parallelism: warm
    # shm must beat the per-chunk pickle oracle even on one core.
    SPEEDUP_FLOORS = (None, 1.2)

WORKLOADS = [
    (
        "rank-2 cycle" + (" (quick)" if QUICK else ""),
        lambda: all_zero_edge_instance(
            cycle_graph(48 if QUICK else 240), 3
        ),
        False,
    ),
    (
        "rank-3 cyclic triples" + (" (quick)" if QUICK else ""),
        lambda: all_zero_triple_instance(
            60 if QUICK else 240,
            cyclic_triples(60 if QUICK else 240),
            8,
        ),
        True,
    ),
]


def _fixer_for(instance):
    if instance.rank <= 2:
        return Rank2Fixer(instance)
    return Rank3Fixer(instance)


def _make_scheduler(backend):
    if backend == "serial":
        return SerialScheduler()
    return ProcessScheduler(ipc=backend)


def _run_warm(backend, build_instance):
    """Best-of-``REPEATS`` warm wall time of one backend.

    One instance + plan per backend; an untimed warm-up execute pays
    the one-time costs (segment broadcast, pool spawn, worker program
    lowering, engine caches), then each timed repetition executes the
    same plan through a fresh fixer — the steady state of a solver
    service re-solving against a warm scheduler.
    """
    instance = build_instance()
    plan = plan_for_instance(instance)
    _obs_harness.reset_engine([instance])
    scheduler = _make_scheduler(backend)
    try:
        scheduler.execute(_fixer_for(instance), plan, instance)
        best_seconds = None
        result = None
        for _ in range(REPEATS):
            fixer = _fixer_for(instance)
            start = time.perf_counter()
            scheduler.execute(fixer, plan, instance)
            elapsed = time.perf_counter() - start
            result = fixer.run(order=())
            if best_seconds is None or elapsed < best_seconds:
                best_seconds = elapsed
        ipc_stats = dict(getattr(scheduler, "ipc_stats", {}) or {})
        # Byte attribution needs a recorder (the pickle plane only
        # sizes its payloads when one is active); one extra untimed
        # traced execute collects the split without touching timings.
        if isinstance(scheduler, ProcessScheduler):
            with recording():
                scheduler.execute(_fixer_for(instance), plan, instance)
            traced = dict(scheduler.ipc_stats)
            for key in ("pickle_bytes", "shm_bytes", "descriptor_bytes"):
                ipc_stats[key] = traced.get(key, 0)
    finally:
        close = getattr(scheduler, "close", None)
        if close is not None:
            close()
    ok = verify_solution(instance, result.assignment).ok
    return best_seconds, result, ok, ipc_stats


def _run_fault_leg(build_instance):
    """The fault-injected shm leg: crash chunk 0, certify the recovery."""
    instance = build_instance()
    plan = plan_for_instance(instance)
    _obs_harness.reset_engine([instance])
    scheduler = ProcessScheduler(
        ipc="shm",
        fault_plan=FaultPlan(explicit_chunks=((0, "crash"),)),
        backoff_base=0.0,
        deadline=30.0,
    )
    try:
        with recording() as recorder:
            fixer = _fixer_for(instance)
            scheduler.execute(fixer, plan, instance)
            result = fixer.run(order=())
            events = list(recorder.memory.events)
    finally:
        scheduler.close()
    ok = verify_solution(instance, result.assignment).ok
    return result, ok, certify_recovery(events)


def run_shm_bench():
    rows = []
    for workload, build_instance, is_headline in WORKLOADS:
        reference = None
        seconds_by_backend = {}
        for backend in ("serial", "pickle", "shm"):
            seconds, result, ok, ipc_stats = _run_warm(
                backend, build_instance
            )
            seconds_by_backend[backend] = seconds
            if backend == "serial":
                reference = result
            identical = (
                result.assignment.as_dict()
                == reference.assignment.as_dict()
                and result.certified_bounds == reference.certified_bounds
            )
            row = {
                "workload": workload,
                "headline": is_headline,
                "backend": backend,
                "best_seconds": round(seconds, 6),
                "speedup_vs_serial": round(
                    seconds_by_backend["serial"] / seconds, 3
                ),
                "steps": result.num_steps,
                "ok": ok,
                "identical_to_serial": identical,
            }
            if backend != "serial":
                # Floats on purpose: these scale with the worker count
                # (= cpu count), so the perf gate must treat them as
                # informational attribution, not exact-match counts.
                row.update(
                    pickle_bytes=float(ipc_stats.get("pickle_bytes", 0)),
                    shm_bytes=float(ipc_stats.get("shm_bytes", 0)),
                    descriptor_bytes=float(
                        ipc_stats.get("descriptor_bytes", 0)
                    ),
                    worker_warm_hits=float(
                        ipc_stats.get("worker_warm_hits", 0)
                    ),
                    broadcasts=float(ipc_stats.get("broadcasts", 0)),
                )
            if backend == "shm":
                row["speedup_vs_pickle"] = round(
                    seconds_by_backend["pickle"] / seconds, 3
                )
            rows.append(row)
        if is_headline:
            result, ok, problems = _run_fault_leg(build_instance)
            rows.append(
                {
                    "workload": workload,
                    "headline": is_headline,
                    "backend": "shm-faulted",
                    "steps": result.num_steps,
                    "ok": ok,
                    "identical_to_serial": (
                        result.assignment.as_dict()
                        == reference.assignment.as_dict()
                        and result.certified_bounds
                        == reference.certified_bounds
                    ),
                    "recovered": not problems,
                }
            )
    return rows


def test_process_shm(benchmark, emit):
    rows, wall = _obs_harness.timed(lambda: benchmark.pedantic(
        run_shm_bench, rounds=1, iterations=1
    ))
    records = _obs_harness.rows_to_records(
        "E8", rows, parameter_keys=("workload", "backend")
    )
    emit(
        "E8",
        records,
        "Process-backend IPC planes: shm vs pickle vs serial",
        wall_seconds=wall,
    )

    for row in rows:
        assert row["ok"], (
            f"invalid solution under {row['backend']} on {row['workload']}"
        )
        assert row["identical_to_serial"], (
            f"{row['backend']} diverged from serial on {row['workload']}"
        )
        if row["backend"] == "shm-faulted":
            assert row["recovered"], (
                f"fault recovery failed certification on {row['workload']}"
            )
        if row["backend"] == "shm":
            assert row["worker_warm_hits"] > 0, (
                f"warm shm run replayed no cached programs on "
                f"{row['workload']}"
            )

    headline = [
        row for row in rows
        if row["headline"] and row["backend"] == "shm"
    ]
    assert headline, "headline rank-3 shm row missing"
    serial_floor, pickle_floor = SPEEDUP_FLOORS
    for row in headline:
        if serial_floor is not None:
            assert row["speedup_vs_serial"] >= serial_floor, (
                f"shm {row['speedup_vs_serial']}x vs serial below the "
                f"{serial_floor}x floor on {row['workload']} "
                f"({CPUS} cpus)"
            )
        assert row["speedup_vs_pickle"] >= pickle_floor, (
            f"shm {row['speedup_vs_pickle']}x vs pickle below the "
            f"{pickle_floor}x floor on {row['workload']} ({CPUS} cpus)"
        )
