"""[T4] Corollary 1.4: O(d^2 + log* n) rounds for rank-3 instances.

n-sweep at fixed structure (cyclic triples, d = 4): total rounds must
plateau once the identifier space passes the Linial fixpoint of G^2.
d-sweep via partition-round triples (t rounds per node -> d ~ 2t): the
schedule phase is bounded by the 2-hop palette d^2 + 1 and grows with d,
while remaining flat in n.
"""

from __future__ import annotations

from repro.analysis import ExperimentRecord
from repro.core import solve_distributed_rank3
from repro.generators import (
    all_zero_triple_instance,
    cyclic_triples,
    partition_rounds_triples,
)
from repro.lll import verify_solution

N_SWEEP = (36, 108, 324, 648)
T_SWEEP = (1, 2, 3)  # triples per node; dependency degree <= 2t
T_SWEEP_N = 36


def run_n_sweep():
    rows = []
    for n in N_SWEEP:
        instance = all_zero_triple_instance(n, cyclic_triples(n), 5)
        result = solve_distributed_rank3(instance)
        rows.append(
            {
                "sweep": "n",
                "n": n,
                "d": instance.max_dependency_degree,
                "ok": verify_solution(instance, result.assignment).ok,
                "total_rounds": result.total_rounds,
                "coloring_rounds": result.coloring_rounds,
                "schedule_rounds": result.schedule_rounds,
                "palette": result.palette,
            }
        )
    return rows


def run_d_sweep():
    rows = []
    for t in T_SWEEP:
        triples = partition_rounds_triples(T_SWEEP_N, t, seed=t)
        # Alphabet 5 > 4 keeps every node strictly below its local
        # threshold: p_v = 5^-t < 2^-2t >= 2^-deg(v).
        instance = all_zero_triple_instance(T_SWEEP_N, triples, 5)
        result = solve_distributed_rank3(instance, require_criterion="local")
        d = instance.max_dependency_degree
        rows.append(
            {
                "sweep": "d",
                "n": T_SWEEP_N,
                "d": d,
                "ok": verify_solution(instance, result.assignment).ok,
                "total_rounds": result.total_rounds,
                "coloring_rounds": result.coloring_rounds,
                "schedule_rounds": result.schedule_rounds,
                "palette": result.palette,
            }
        )
    return rows


def test_cor14_rounds(benchmark, emit):
    rows = benchmark.pedantic(
        lambda: run_n_sweep() + run_d_sweep(), rounds=1, iterations=1
    )
    records = [
        ExperimentRecord("T4", {"sweep": row["sweep"]}, row) for row in rows
    ]
    emit("T4", records, "Corollary 1.4: rounds vs n and d (rank 3)")

    assert all(row["ok"] for row in rows)

    n_rows = [row for row in rows if row["sweep"] == "n"]
    totals = [row["total_rounds"] for row in n_rows]
    # Flat tail: the last doubling of n leaves the round count unchanged.
    assert totals[-1] == totals[-2]

    d_rows = [row for row in rows if row["sweep"] == "d"]
    for row in d_rows:
        # Schedule bounded by the 2-hop palette <= d^2 + 1.
        assert row["schedule_rounds"] <= row["d"] ** 2 + 1
    schedules = [row["schedule_rounds"] for row in d_rows]
    assert schedules == sorted(schedules)
