"""[T2] Corollary 1.2: O(d + log* n) rounds for rank-2 instances.

Two sweeps on the distributed rank-2 algorithm:

* n-sweep at fixed degree — total rounds must flatten once n passes the
  Linial fixpoint (the log* n regime), i.e. doubling n stops changing
  the count;
* d-sweep at fixed n — the *schedule* phase (the part the corollary
  attributes to iterating the edge-color classes) must grow linearly in
  d (palette 2d - 1), while the coloring phase stays polynomial in d.
"""

from __future__ import annotations

from repro.analysis import ExperimentRecord, growth_ratios
from repro.core import solve_distributed_rank2
from repro.generators import all_zero_edge_instance, cycle_graph, random_regular_graph
from repro.lll import verify_solution

N_SWEEP = (64, 128, 256, 512, 1024)
D_SWEEP = (3, 4, 5, 6)
D_SWEEP_N = 48


def run_n_sweep():
    rows = []
    for n in N_SWEEP:
        instance = all_zero_edge_instance(cycle_graph(n), 3)
        result = solve_distributed_rank2(instance)
        ok = verify_solution(instance, result.assignment).ok
        rows.append(
            {
                "sweep": "n",
                "n": n,
                "d": 2,
                "ok": ok,
                "total_rounds": result.total_rounds,
                "coloring_rounds": result.coloring_rounds,
                "schedule_rounds": result.schedule_rounds,
            }
        )
    return rows


def run_d_sweep():
    rows = []
    for d in D_SWEEP:
        instance = all_zero_edge_instance(
            random_regular_graph(D_SWEEP_N, d, seed=d), 3
        )
        result = solve_distributed_rank2(instance)
        ok = verify_solution(instance, result.assignment).ok
        rows.append(
            {
                "sweep": "d",
                "n": D_SWEEP_N,
                "d": d,
                "ok": ok,
                "total_rounds": result.total_rounds,
                "coloring_rounds": result.coloring_rounds,
                "schedule_rounds": result.schedule_rounds,
            }
        )
    return rows


def test_cor12_rounds(benchmark, emit):
    rows = benchmark.pedantic(
        lambda: run_n_sweep() + run_d_sweep(), rounds=1, iterations=1
    )
    records = [
        ExperimentRecord("T2", {"sweep": row["sweep"]}, row) for row in rows
    ]
    emit("T2", records, "Corollary 1.2: rounds vs n and d (rank 2)")

    n_rows = [row for row in rows if row["sweep"] == "n"]
    d_rows = [row for row in rows if row["sweep"] == "d"]
    assert all(row["ok"] for row in rows)

    # n-sweep: flat tail (log* regime) — last doubling adds nothing.
    totals = [row["total_rounds"] for row in n_rows]
    assert totals[-1] == totals[-2]
    # And nothing close to the Omega(log n) growth of the threshold regime:
    # across a 16x increase in n, rounds grow by far less than 4x.
    assert totals[-1] < 2 * totals[0]

    # d-sweep: the schedule phase is exactly the edge palette = 2d - 1.
    for row in d_rows:
        assert row["schedule_rounds"] <= 2 * row["d"] - 1
    schedule = [row["schedule_rounds"] for row in d_rows]
    assert schedule == sorted(schedule)  # grows with d
