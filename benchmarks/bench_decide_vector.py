"""[E6] Vector decide plane: whole-class batch vs per-op scalar decisions.

The decide hot path of every fixer is the same loop: for each variable
of a color class, query the affected events' conditional increases,
pick a value, update the phi ledger.  The vector decide plane
(``repro.core.vector``) lowers a whole class into stacked kernel
queries, one batched selection per structural group and a flat numpy
ledger — and promises a transcript *bit-identical* to the per-op
scalar loop it replaces.  This bench measures exactly that trade on
the E2 headline workload (rank-3 cyclic triples, n=240, alphabet 8):
plan execution through the serial scheduler under ``vector`` vs
``scalar`` decide mode.

Timing convention — warm, deliberately unlike E2's cold convention:
one instance and one plan are built up front, both decide paths run
once untimed (compiling kernels, building the class templates), and
every timed repetition then constructs a *fresh fixer inside the timed
region* and executes the full plan.  E2 measures first-solve cost
(cold per-event caches each repetition); E6 measures the steady-state
decide/commit arithmetic, which is what the batch lowering targets —
the template is per-instance state and amortises across fixers exactly
as it does across the repeated solves of a sweep.  Since the artifact
plane (``repro.artifacts``) landed, the untimed warm-up also populates
the process-global store — templates, kernel stacks and the instance's
parameter tier entry — so both decide paths see the same warm store;
the cold/warm *store* trade is E7's subject
(``bench_artifact_cache.py``), not this bench's.

Acceptance bar: the vector path must be at least 10x faster than the
scalar oracle on the headline workload (4x in quick mode,
``DECIDE_BENCH_QUICK=1``, sized for noisy CI runners), with the two
transcripts exactly equal.  A second phase solves a rank-2 cycle at
n = 10^6 end-to-end (build + plan + execute + verify) on the vector
plane — the scale target the batched decide exists for; quick mode
shrinks it to n = 2*10^4.  That row is informational (no floor) but
must verify and fix every variable.
"""

from __future__ import annotations

import os
import time

import _obs_harness
from repro.core import Rank2Fixer, Rank3Fixer
from repro.core.vector import using_decide
from repro.generators import (
    all_zero_edge_instance,
    all_zero_triple_instance,
    cycle_graph,
    cyclic_triples,
)
from repro.lll import verify_solution
from repro.probability.engine import STATS
from repro.runtime import make_scheduler
from repro.runtime.plan import plan_for_instance

QUICK = os.environ.get("DECIDE_BENCH_QUICK") == "1"

#: Timing repetitions per decide mode; the fastest is kept.
REPEATS = 3 if QUICK else 7

#: Required vector-over-scalar speedup on the headline workload.
SPEEDUP_FLOOR = 4.0 if QUICK else 10.0

#: Headline workload size (the E2 headline rank-3 configuration).
HEADLINE_N = 60 if QUICK else 240

#: End-to-end rank-2 scale phase.
SCALE_N = 20_000 if QUICK else 1_000_000


def _transcript(fixer):
    return (
        fixer.assignment.as_dict(),
        fixer.steps,
        fixer.pstar.certified_bounds(),
    )


def _run_headline():
    """Best-of-``REPEATS`` plan execution per decide mode, one instance."""
    instance = all_zero_triple_instance(
        HEADLINE_N, cyclic_triples(HEADLINE_N), 8
    )
    plan = plan_for_instance(instance)
    _obs_harness.reset_engine([instance])
    # Untimed warmup of both paths: compiles the kernels, builds the
    # per-instance class templates, populates the per-event caches the
    # scalar loop reads — steady state for both contenders.
    for mode in ("vector", "scalar"):
        with using_decide(mode):
            warm = Rank3Fixer(instance)
            make_scheduler("serial").execute(warm, plan, instance)
    rows = []
    transcripts = {}
    best_by_mode = {}
    for mode in ("vector", "scalar"):
        best = None
        fixer = None
        with using_decide(mode):
            for _ in range(REPEATS):
                start = time.perf_counter()
                fixer = Rank3Fixer(instance)
                make_scheduler("serial").execute(fixer, plan, instance)
                elapsed = time.perf_counter() - start
                if best is None or elapsed < best:
                    best = elapsed
        transcripts[mode] = _transcript(fixer)
        best_by_mode[mode] = best
        rows.append(
            {
                "phase": "headline rank-3" + (" (quick)" if QUICK else ""),
                "mode": mode,
                "best_seconds": round(best, 6),
                "us_per_op": round(best * 1e6 / plan.num_ops, 3),
                "ops": plan.num_ops,
                "ok": verify_solution(
                    instance, fixer.assignment
                ).ok,
            }
        )
    identical = transcripts["vector"] == transcripts["scalar"]
    speedup = best_by_mode["scalar"] / best_by_mode["vector"]
    for row in rows:
        row["identical"] = identical
        if row["mode"] == "vector":
            row["speedup_vs_scalar"] = round(speedup, 3)
            row["vector_passes"] = STATS.vector_passes
            row["vector_memo_hits"] = STATS.vector_memo_hits
            row["vector_fallbacks"] = STATS.vector_fallbacks
    return rows


def _run_scale():
    """End-to-end rank-2 solve at the scale target, vector mode."""
    with using_decide("vector"):
        build_start = time.perf_counter()
        instance = all_zero_edge_instance(cycle_graph(SCALE_N), 3)
        plan = plan_for_instance(instance)
        fixer = Rank2Fixer(instance)
        execute_start = time.perf_counter()
        make_scheduler("serial").execute(fixer, plan, instance)
        execute_seconds = time.perf_counter() - execute_start
        total_seconds = time.perf_counter() - build_start
        ok = verify_solution(instance, fixer.assignment).ok
    return [
        {
            "phase": f"rank-2 cycle n={SCALE_N} end-to-end",
            "mode": "vector",
            "best_seconds": round(execute_seconds, 6),
            "total_seconds": round(total_seconds, 6),
            "ops": plan.num_ops,
            "us_per_op": round(execute_seconds * 1e6 / plan.num_ops, 3),
            "steps": len(fixer.steps),
            "ok": ok,
            "identical": True,
        }
    ]


def test_decide_vector(benchmark, emit):
    def run_all():
        return _run_headline() + _run_scale()

    rows, wall = _obs_harness.timed(
        lambda: benchmark.pedantic(run_all, rounds=1, iterations=1)
    )
    records = _obs_harness.rows_to_records(
        "E6", rows, parameter_keys=("phase", "mode")
    )
    emit(
        "E6",
        records,
        "Vector decide plane: whole-class batch vs scalar oracle",
        wall_seconds=wall,
    )

    for row in rows:
        assert row["ok"], f"invalid solution in phase {row['phase']!r}"
        assert row["identical"], (
            f"vector transcript diverged from scalar in {row['phase']!r}"
        )

    headline = [
        row for row in rows
        if row["mode"] == "vector" and "speedup_vs_scalar" in row
    ]
    assert headline, "headline vector row missing"
    for row in headline:
        assert row["vector_fallbacks"] == 0, (
            "vector plane fell back to the scalar loop on the headline "
            "workload"
        )
        assert row["speedup_vs_scalar"] >= SPEEDUP_FLOOR, (
            f"vector speedup {row['speedup_vs_scalar']}x below the "
            f"{SPEEDUP_FLOOR}x floor"
        )

    scale = [row for row in rows if "steps" in row]
    assert scale and scale[0]["steps"] == scale[0]["ops"], (
        "scale phase did not fix every variable"
    )
