"""[T1] Theorem 1.1: the rank-2 deterministic fixer always succeeds.

Across graph families, alphabet sizes and fixing orders — including the
adaptive max-pressure adversary — the fixer must produce an assignment
avoiding every bad event, with the per-edge increase budget (sum <= 2)
never exceeded and every certified final bound strictly below 1.
"""

from __future__ import annotations

import random

import _obs_harness
from repro.core import (
    Rank2Fixer,
    max_pressure_chooser,
    run_with_adversary,
    solve_rank2,
)
from repro.generators import (
    all_zero_edge_instance,
    cycle_graph,
    random_regular_graph,
    torus_graph,
)
from repro.lll import verify_solution

WORKLOADS = [
    ("cycle n=60 k=3", lambda: all_zero_edge_instance(cycle_graph(60), 3)),
    ("cycle n=60 k=5", lambda: all_zero_edge_instance(cycle_graph(60), 5)),
    (
        "3-regular n=40 k=3",
        lambda: all_zero_edge_instance(random_regular_graph(40, 3, seed=1), 3),
    ),
    (
        "4-regular n=40 k=3",
        lambda: all_zero_edge_instance(random_regular_graph(40, 4, seed=2), 3),
    ),
    (
        "5-regular n=40 k=3",
        lambda: all_zero_edge_instance(random_regular_graph(40, 5, seed=3), 3),
    ),
    ("torus 6x6 k=3", lambda: all_zero_edge_instance(torus_graph(6, 6), 3)),
]
ORDERS_PER_WORKLOAD = 3


def run_workload(factory, name):
    """Solve one workload under several orders plus the adversary."""
    rng = random.Random(0)
    successes = 0
    attempts = 0
    min_slack = float("inf")
    max_bound = 0.0
    for trial in range(ORDERS_PER_WORKLOAD):
        instance = factory()
        order = [v.name for v in instance.variables]
        rng.shuffle(order)
        result = solve_rank2(instance, order=order)
        attempts += 1
        if verify_solution(instance, result.assignment).ok:
            successes += 1
        min_slack = min(min_slack, result.min_slack)
        max_bound = max(max_bound, result.max_certified_bound)
    # Adaptive adversary run.
    instance = factory()
    fixer = Rank2Fixer(instance)
    result = run_with_adversary(fixer, max_pressure_chooser)
    attempts += 1
    if verify_solution(instance, result.assignment).ok:
        successes += 1
    min_slack = min(min_slack, result.min_slack)
    max_bound = max(max_bound, result.max_certified_bound)
    return {
        "workload": name,
        "runs": attempts,
        "successes": successes,
        "min_step_slack": min_slack,
        "max_certified_bound": max_bound,
    }


def run_all():
    return [run_workload(factory, name) for name, factory in WORKLOADS]


def test_thm11_rank2(benchmark, emit):
    rows, wall = _obs_harness.timed(
        lambda: benchmark.pedantic(run_all, rounds=1, iterations=1)
    )
    records = _obs_harness.rows_to_records("T1", rows, ("workload",))
    emit(
        "T1",
        records,
        "Theorem 1.1: rank-2 fixer success across workloads",
        wall_seconds=wall,
    )

    for row in rows:
        assert row["successes"] == row["runs"]  # 100% success
        assert row["min_step_slack"] >= -1e-9  # budget never exceeded
        assert row["max_certified_bound"] < 1.0  # p * 2^d < 1 realised
