"""[T6] Deterministic fixing vs. Moser-Tardos on the same instances.

The paper's related-work comparison: a straightforward distributed
Moser-Tardos implementation costs O(log^2 n) rounds; Corollary 1.2's
deterministic algorithm costs O(d + log* n).  On identical
below-threshold workloads we measure both (plus MT's resampling work) as
n grows: the deterministic round count flattens while MT's keeps
drifting upward, and the deterministic algorithm needs zero randomness
and zero resamplings.
"""

from __future__ import annotations

import statistics

from repro.analysis import ExperimentRecord
from repro.baselines import distributed_moser_tardos, sequential_moser_tardos
from repro.core import solve_distributed
from repro.generators import all_zero_edge_instance, random_regular_graph
from repro.lll import verify_solution

N_SWEEP = (32, 128, 512, 2048)
SEEDS = (0, 1, 2)


def run_comparison():
    rows = []
    for n in N_SWEEP:
        graph = random_regular_graph(n, 3, seed=n)
        instance = all_zero_edge_instance(graph, 3)
        deterministic = solve_distributed(instance)
        assert verify_solution(instance, deterministic.assignment).ok

        mt_rounds = []
        mt_resamplings = []
        for seed in SEEDS:
            fresh = all_zero_edge_instance(graph, 3)
            result = distributed_moser_tardos(fresh, seed=seed)
            assert verify_solution(fresh, result.assignment).ok
            mt_rounds.append(result.rounds)
            mt_resamplings.append(result.resamplings)

        seq = sequential_moser_tardos(
            all_zero_edge_instance(graph, 3), seed=0
        )

        rows.append(
            {
                "n": n,
                "deterministic_rounds": deterministic.total_rounds,
                "mt_distributed_rounds": statistics.mean(mt_rounds),
                "mt_resamplings": statistics.mean(mt_resamplings),
                "mt_sequential_resamplings": seq.resamplings,
            }
        )
    return rows


def test_vs_moser_tardos(benchmark, emit):
    rows = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    records = [ExperimentRecord("T6", {"n": row["n"]}, row) for row in rows]
    emit("T6", records, "Deterministic (Cor. 1.2) vs Moser-Tardos rounds")

    deterministic = [row["deterministic_rounds"] for row in rows]
    mt = [row["mt_distributed_rounds"] for row in rows]

    # Deterministic: flat up to the additive log* n term — a couple of
    # rounds across a 64x growth in n, no multiplicative growth.
    assert deterministic[-1] - deterministic[-2] <= 4
    assert deterministic[-1] < 2 * deterministic[0]
    # MT grows with n (its expected round count is Theta(log n)-ish here):
    # from the smallest to the largest n it must increase.
    assert mt[-1] > mt[0]
    # MT's total resampling work grows super-linearly in this sweep while
    # the deterministic algorithm performs none by construction.
    resamplings = [row["mt_resamplings"] for row in rows]
    assert resamplings[-1] > 4 * resamplings[0]
