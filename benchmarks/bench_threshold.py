"""[T5] The sharp threshold phase shift at p = 2^-d.

Three measurements on 3-regular graphs:

* AT the threshold (sinkless orientation, p = 2^-d): the deterministic
  fixers reject the instance (criterion check), naive sampling's exact
  success probability decays exponentially with n, and randomized
  Moser-Tardos needs rounds that grow with n;
* BELOW the threshold (3-label relaxation, p = 3^-d < 2^-d): the
  deterministic distributed algorithm solves every instance in a round
  count that is flat in n.

This is the paper's central claim made measurable: crossing p = 2^-d
flips the problem from "inherently n-dependent" to "O(poly d + log* n),
no randomness needed".
"""

from __future__ import annotations

import statistics

import _obs_harness
from repro.applications import (
    relaxed_sinkless_instance,
    sinkless_orientation_instance,
)
from repro.baselines import avoidance_probability, distributed_moser_tardos
from repro.core import solve_distributed
from repro.errors import CriterionViolationError
from repro.generators import random_regular_graph
from repro.lll import verify_solution

SMALL_N = (4, 6, 8, 10)  # exact avoidance probability (2^(3n/2) outcomes)
LARGE_N = (16, 64, 256, 1024)
MT_SEEDS = (0, 1, 2, 3, 4)


def run_exact_success_probability():
    """Naive sampling success probability at the threshold, exactly."""
    rows = []
    for n in SMALL_N:
        graph = random_regular_graph(n, 3, seed=n)
        instance = sinkless_orientation_instance(graph)
        rows.append(
            {
                "regime": "at threshold",
                "metric": "Pr[random orientation sinkless]",
                "n": n,
                "value": avoidance_probability(instance),
            }
        )
    return rows


def run_moser_tardos_growth():
    """Mean distributed-MT rounds at the threshold, over seeds."""
    rows = []
    for n in LARGE_N:
        graph = random_regular_graph(n, 3, seed=n)
        instance = sinkless_orientation_instance(graph)
        rounds = []
        for seed in MT_SEEDS:
            result = distributed_moser_tardos(instance, seed=seed)
            assert verify_solution(instance, result.assignment).ok
            rounds.append(result.rounds)
        rows.append(
            {
                "regime": "at threshold",
                "metric": "distributed MT rounds (mean)",
                "n": n,
                "value": statistics.mean(rounds),
            }
        )
    return rows


def run_deterministic_below():
    """Deterministic rounds below the threshold: flat in n."""
    rows = []
    for n in LARGE_N:
        graph = random_regular_graph(n, 3, seed=n)
        instance = relaxed_sinkless_instance(graph, labels=3)
        result = solve_distributed(instance)
        assert verify_solution(instance, result.assignment).ok
        rows.append(
            {
                "regime": "below threshold",
                "metric": "deterministic LOCAL rounds",
                "n": n,
                "value": result.total_rounds,
            }
        )
    return rows


def run_unchecked_fixer_at_threshold(num_seeds: int = 10):
    """Force the deterministic process to run AT the threshold.

    With the criterion check disabled, the rank-2 averaging process still
    completes — but its guarantee is gone: we count on how many random
    cubic graphs the produced orientation has a sink.  (Its certificate
    is honest: every failing run ends with a certified bound >= 1.)
    """
    from repro.core import Rank2Fixer

    failures = 0
    lying_certificates = 0
    for seed in range(num_seeds):
        graph = random_regular_graph(10, 3, seed=seed)
        instance = sinkless_orientation_instance(graph)
        fixer = Rank2Fixer(instance, require_criterion=False)
        result = fixer.run()
        ok = verify_solution(instance, result.assignment).ok
        if not ok:
            failures += 1
            if result.max_certified_bound < 1.0 - 1e-9:
                lying_certificates += 1
    return failures, lying_certificates, num_seeds


def run_rejection_at_threshold():
    """The deterministic fixer must reject at-threshold instances."""
    graph = random_regular_graph(16, 3, seed=16)
    instance = sinkless_orientation_instance(graph)
    try:
        solve_distributed(instance)
    except CriterionViolationError:
        return True
    return False


def test_threshold_phase_shift(benchmark, emit):
    def run_all():
        return (
            run_exact_success_probability()
            + run_moser_tardos_growth()
            + run_deterministic_below()
        )

    rows, wall = _obs_harness.timed(
        lambda: benchmark.pedantic(run_all, rounds=1, iterations=1)
    )
    rejected = run_rejection_at_threshold()
    rows.append(
        {
            "regime": "at threshold",
            "metric": "deterministic fixer rejects",
            "n": 16,
            "value": rejected,
        }
    )
    failures, lying, seeds = run_unchecked_fixer_at_threshold()
    rows.append(
        {
            "regime": "at threshold",
            "metric": f"unchecked fixer failures (of {seeds} graphs)",
            "n": 10,
            "value": failures,
        }
    )
    records = _obs_harness.rows_to_records("T5", rows, ("regime", "metric"))
    emit(
        "T5",
        records,
        "The sharp threshold phase shift at p = 2^-d",
        wall_seconds=wall,
    )

    assert rejected
    # The hardness is real: the unchecked process fails on some graphs,
    # and its certificate never lies about it.
    assert failures > 0
    assert lying == 0

    # Naive success probability decays as n grows (exponentially).
    probabilities = [
        row["value"]
        for row in rows
        if row["metric"] == "Pr[random orientation sinkless]"
    ]
    assert all(
        later < earlier
        for earlier, later in zip(probabilities, probabilities[1:])
    )

    # Deterministic rounds below the threshold: flat up to the additive
    # log* n term (a few rounds across a 64x growth in n), nowhere near
    # the multiplicative growth a log-n-shaped curve would show.
    deterministic = [
        row["value"]
        for row in rows
        if row["metric"] == "deterministic LOCAL rounds"
    ]
    assert deterministic[-1] - deterministic[-2] <= 4
    assert deterministic[-1] < 2 * deterministic[0]

    # Randomized MT at the threshold grows from the smallest to the
    # largest n (who-wins shape: determinism below beats randomness at).
    mt_rounds = [
        row["value"]
        for row in rows
        if row["metric"] == "distributed MT rounds (mean)"
    ]
    assert mt_rounds[-1] > mt_rounds[0]
