"""[E3] Array-native graph substrate: CSR arrays vs per-node dicts.

``repro.graph`` promises that the vectorized coloring substrate, the
batched LOCAL round loop, and the CSR-backed plan builders are
bit-identical to their per-node reference twins while replacing dict
traversals with whole-network array ops.  This bench measures the three
hot paths the substrate rewrites, sweeping ``n`` up to ``10^6``:

* **coloring** — the full ``d+1`` vertex-coloring pipeline (Linial +
  Kuhn-Wattenhofer) on a cycle: ``vertex_coloring_arrays`` over a CSR
  cycle vs ``compute_vertex_coloring`` over a networkx-backed ``Network``
  on the reference backend;
* **plan construction** — ``build_plan_rank2`` on the all-zero cycle
  instance under each backend (CSR line-graph coloring vs the networkx
  line-graph pipeline);
* **one simulated round** — a single broadcast-and-aggregate round
  (every node learns the minimum identifier in its closed neighborhood)
  through :class:`BatchedSimulator`'s CSR gather vs the dict simulator's
  per-edge delivery.

Reference timings stop at the largest size the per-node path can cover
in reasonable wall-clock; above that the sweep continues with
vectorized-only rows (``ref_seconds`` null) up to ``n = 10^6``.  Every
compared row asserts bit-identity — same colors, equal plans, same
outputs and message accounting.

Acceptance bar: at the largest *compared* workload the vectorized
substrate must be >= 5x on coloring and >= 3x on plan construction (and
>= 3x on the round loop).  Quick mode (``GRAPH_BENCH_QUICK=1``, the CI
perf-smoke job) shrinks the sweep and only requires the fast paths not
to be slower.  All arrays on the timed paths are checked against
object-dtype fallback via ``_obs_harness.require_native_dtype`` — a
silent degradation to per-element Python calls fails the bench instead
of quietly inflating its timings.
"""

from __future__ import annotations

import os
import time

import numpy as np

import _obs_harness
from repro.artifacts import using_artifacts
from repro.generators import all_zero_edge_instance, cycle_csr, cycle_graph
from repro.graph import (
    ArrayAlgorithm,
    BatchedSimulator,
    use_backend,
    vertex_coloring_arrays,
)
from repro.coloring import compute_vertex_coloring
from repro.local_model import Network, Simulator
from repro.local_model.algorithm import LocalAlgorithm
from repro.runtime.plan import build_plan_rank2

QUICK = os.environ.get("GRAPH_BENCH_QUICK") == "1"

#: Timing repetitions per (phase, size, backend); the fastest is kept.
REPEATS = 2 if QUICK else 3

#: Required vectorized-over-reference speedups at the largest compared
#: workload of each phase.
COLORING_SPEEDUP_FLOOR = 1.5 if QUICK else 5.0
PLAN_SPEEDUP_FLOOR = 1.0 if QUICK else 3.0
ROUND_SPEEDUP_FLOOR = 1.0 if QUICK else 3.0

#: Compared sizes run both backends; solo sizes run vectorized only
#: (the per-node path would take minutes there — the sweep's point).
COLORING_COMPARED = (512, 2048) if QUICK else (4096, 32768)
COLORING_SOLO = () if QUICK else (1_000_000,)
PLAN_COMPARED = (512, 2048) if QUICK else (4096, 16384)
PLAN_SOLO = () if QUICK else (65_536,)
ROUND_COMPARED = (2048, 8192) if QUICK else (16_384, 262_144)
ROUND_SOLO = () if QUICK else (1_000_000,)


def _best_of(fn):
    """Best-of-``REPEATS`` wall time; returns ``(seconds, last_result)``."""
    best = None
    result = None
    for _ in range(REPEATS):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return best, result


def _check_native(csr, context):
    _obs_harness.require_native_dtype(csr.indptr, f"{context}: indptr")
    _obs_harness.require_native_dtype(csr.indices, f"{context}: indices")


# ----------------------------------------------------------------------
# Phase 1: the coloring substrate (Linial + KW, whole pipeline)
# ----------------------------------------------------------------------
def _coloring_rows():
    rows = []
    for n in COLORING_COMPARED + COLORING_SOLO:
        compared = n in COLORING_COMPARED
        csr = cycle_csr(n)
        _check_native(csr, f"coloring n={n}")
        vec_seconds, vec = _best_of(lambda: vertex_coloring_arrays(csr))
        ref_seconds = None
        identical = None
        if compared:
            network = Network(cycle_graph(n))
            with use_backend("reference"):
                ref_seconds, ref = _best_of(
                    lambda: compute_vertex_coloring(network)
                )
            identical = (
                vec.colors == ref.colors
                and vec.palette == ref.palette
                and vec.total_rounds == ref.total_rounds
            )
        rows.append(
            {
                "phase": "coloring",
                "n": n,
                "ref_seconds": (
                    round(ref_seconds, 6) if ref_seconds is not None else None
                ),
                "vec_seconds": round(vec_seconds, 6),
                "speedup": (
                    round(ref_seconds / vec_seconds, 2)
                    if ref_seconds is not None
                    else None
                ),
                "identical": identical,
                "detail": f"palette={vec.palette} rounds={vec.total_rounds}",
            }
        )
    return rows


# ----------------------------------------------------------------------
# Phase 2: rank-2 plan construction (line-graph coloring + grouping)
# ----------------------------------------------------------------------
def _plan_rows():
    rows = []
    for n in PLAN_COMPARED + PLAN_SOLO:
        compared = n in PLAN_COMPARED

        def timed_build():
            # Instance construction is identical Python work on both
            # backends and stays outside the timed region; a fresh
            # instance per repetition keeps the per-instance CSR and
            # indexing caches cold for every timed build.  The artifact
            # plane is scoped off below for the same reason: its plans
            # tier would serve every repetition after the first from the
            # store, turning a construction bench into a cache-hit bench
            # (the warm trade is E7's subject, bench_artifact_cache.py).
            instances = [
                all_zero_edge_instance(cycle_graph(n), 3)
                for _ in range(REPEATS)
            ]
            best = None
            plan = None
            for instance in instances:
                start = time.perf_counter()
                plan = build_plan_rank2(instance)
                elapsed = time.perf_counter() - start
                if best is None or elapsed < best:
                    best = elapsed
            return best, plan

        with using_artifacts("off"):
            with use_backend("vectorized"):
                vec_seconds, vec_plan = timed_build()
            ref_seconds = None
            identical = None
            if compared:
                with use_backend("reference"):
                    ref_seconds, ref_plan = timed_build()
                identical = vec_plan == ref_plan
        rows.append(
            {
                "phase": "plan",
                "n": n,
                "ref_seconds": (
                    round(ref_seconds, 6) if ref_seconds is not None else None
                ),
                "vec_seconds": round(vec_seconds, 6),
                "speedup": (
                    round(ref_seconds / vec_seconds, 2)
                    if ref_seconds is not None
                    else None
                ),
                "identical": identical,
                "detail": (
                    f"classes={vec_plan.num_classes} ops={vec_plan.num_ops}"
                ),
            }
        )
    return rows


# ----------------------------------------------------------------------
# Phase 3: one simulated LOCAL round (broadcast + aggregate)
# ----------------------------------------------------------------------
class _MinNeighborLocal(LocalAlgorithm):
    """One round: broadcast my identifier, output the neighborhood min."""

    def send(self, node, round_number):
        return {neighbor: node.identifier for neighbor in node.neighbors}

    def receive(self, node, messages, round_number):
        best = node.identifier
        for value in messages.values():
            if value is not None and value < best:
                best = value
        node.halt_with(best)


class _MinNeighborArray(ArrayAlgorithm):
    """The same round as a CSR gather + segmented minimum."""

    rounds_needed = 1

    def start(self, csr, inputs):
        return np.arange(csr.num_nodes, dtype=np.int64)

    def round(self, state, csr, round_number):
        out = state.copy()
        np.minimum.at(out, csr.row_index, state[csr.indices])
        return out


def _round_rows():
    rows = []
    for n in ROUND_COMPARED + ROUND_SOLO:
        compared = n in ROUND_COMPARED
        csr = cycle_csr(n)
        _check_native(csr, f"round n={n}")

        def run_batched():
            simulator = BatchedSimulator(csr, _MinNeighborArray())
            result = simulator.run()
            _obs_harness.require_native_dtype(
                simulator.state, f"round n={n}: state"
            )
            return result

        vec_seconds, vec = _best_of(run_batched)
        ref_seconds = None
        identical = None
        if compared:
            network = Network(cycle_graph(n))

            def run_dict():
                return Simulator(network, _MinNeighborLocal()).run()

            ref_seconds, ref = _best_of(run_dict)
            identical = (
                vec.outputs == ref.outputs
                and vec.rounds == ref.rounds
                and vec.messages_delivered == ref.messages_delivered
                and vec.round_messages == ref.round_messages
            )
        rows.append(
            {
                "phase": "round",
                "n": n,
                "ref_seconds": (
                    round(ref_seconds, 6) if ref_seconds is not None else None
                ),
                "vec_seconds": round(vec_seconds, 6),
                "speedup": (
                    round(ref_seconds / vec_seconds, 2)
                    if ref_seconds is not None
                    else None
                ),
                "identical": identical,
                "detail": f"messages={vec.messages_delivered}",
            }
        )
    return rows


def run_substrate():
    return _coloring_rows() + _plan_rows() + _round_rows()


def _largest_compared(rows, phase):
    compared = [row for row in rows if row["phase"] == phase and row["speedup"]]
    assert compared, f"no compared rows for phase {phase!r}"
    return max(compared, key=lambda row: row["n"])


def test_graph_substrate(benchmark, emit):
    rows, wall = _obs_harness.timed(
        lambda: benchmark.pedantic(run_substrate, rounds=1, iterations=1)
    )
    records = _obs_harness.rows_to_records(
        "E3", rows, parameter_keys=("phase", "n")
    )
    emit(
        "E3",
        records,
        "Graph substrate: CSR arrays vs per-node dicts",
        wall_seconds=wall,
    )

    for row in rows:
        if row["identical"] is not None:
            assert row["identical"], (
                f"vectorized {row['phase']} diverged from the reference "
                f"at n={row['n']}"
            )

    for phase, floor in (
        ("coloring", COLORING_SPEEDUP_FLOOR),
        ("plan", PLAN_SPEEDUP_FLOOR),
        ("round", ROUND_SPEEDUP_FLOOR),
    ):
        headline = _largest_compared(rows, phase)
        assert headline["speedup"] >= floor, (
            f"{phase} speedup {headline['speedup']}x below the {floor}x "
            f"floor at n={headline['n']}"
        )
