"""[A2] Application: relaxed weak splitting (r <= 3, 16 colors, see >= 2).

The paper's second application: the 2-color weak splitting problem is
P-SLOCAL-complete and above the threshold, but with 16 colors and the
"see at least 2 colors" requirement it drops below p = 2^-d and
derandomizes.  The bench sweeps workload sizes and palette sizes (down
to the 9-color edge of the criterion) and verifies the domain-level
requirement on every deterministic solution.
"""

from __future__ import annotations

from repro.analysis import ExperimentRecord
from repro.applications import (
    coloring_from_assignment,
    random_splitting_workload,
    weak_splitting_instance,
)
from repro.applications.weak_splitting import satisfies_requirement
from repro.core import solve, solve_distributed
from repro.lll import verify_solution

SIZE_SWEEP = ((10, 15), (20, 30), (40, 60))
PALETTES = (16, 12, 9)


def run_size_sweep():
    rows = []
    for num_v, num_u in SIZE_SWEEP:
        bipartite, v_nodes, u_nodes = random_splitting_workload(
            num_v=num_v, num_u=num_u, v_degree=3, seed=num_v
        )
        instance = weak_splitting_instance(bipartite, v_nodes, num_colors=16)
        result = solve_distributed(instance)
        coloring = coloring_from_assignment(u_nodes, result.assignment)
        rows.append(
            {
                "workload": f"|V|={num_v} |U|={num_u}",
                "colors": 16,
                "p": instance.max_event_probability,
                "threshold": 2.0**-instance.max_dependency_degree,
                "requirement_met": satisfies_requirement(
                    bipartite, v_nodes, coloring
                ),
                "rounds": result.total_rounds,
            }
        )
    return rows


def run_palette_sweep():
    rows = []
    for colors in PALETTES:
        bipartite, v_nodes, u_nodes = random_splitting_workload(
            num_v=15, num_u=25, v_degree=3, seed=99
        )
        instance = weak_splitting_instance(
            bipartite, v_nodes, num_colors=colors
        )
        result = solve(instance)
        ok = verify_solution(instance, result.assignment).ok
        coloring = coloring_from_assignment(u_nodes, result.assignment)
        rows.append(
            {
                "workload": "palette sweep |V|=15",
                "colors": colors,
                "p": instance.max_event_probability,
                "threshold": 2.0**-instance.max_dependency_degree,
                "requirement_met": ok
                and satisfies_requirement(bipartite, v_nodes, coloring),
                "rounds": 0,
            }
        )
    return rows


def test_app_weak_splitting(benchmark, emit):
    rows = benchmark.pedantic(
        lambda: run_size_sweep() + run_palette_sweep(), rounds=1, iterations=1
    )
    records = [
        ExperimentRecord(
            "A2", {"workload": row["workload"], "colors": row["colors"]}, row
        )
        for row in rows
    ]
    emit("A2", records, "Application: relaxed weak splitting")

    for row in rows:
        assert row["p"] < row["threshold"]
        assert row["requirement_met"]
