"""[X2] How much stronger is the naive rank-r criterion than p < 2^-d?

Section 1 of the paper motivates the main theorem by pricing the
"straightforward" generalisation of the rank-2 argument: it needs
``p < r^-C(d, r-1)``, exponentially stronger than the paper's
``p < 2^-d``.  This bench makes that gap concrete:

* a table of the two thresholds over d (the criterion-gap curve), and
* live instances in the wedge between them — accepted and solved by the
  P*-based rank-3 fixer, rejected by the naive fixer.
"""

from __future__ import annotations

import math

import _obs_harness
from repro.core import check_naive_criterion, solve_naive, solve_rank3
from repro.errors import CriterionViolationError
from repro.generators import all_zero_triple_instance, cyclic_triples
from repro.lll import NaiveRankCriterion, verify_solution

DEGREES = (4, 6, 8, 10, 12)


def run_threshold_gap():
    """Tabulate p-thresholds: the paper's 2^-d vs naive 3^-C(d,2)."""
    naive = NaiveRankCriterion(3)
    rows = []
    for d in DEGREES:
        paper = 2.0**-d
        straightforward = naive.threshold(d)
        rows.append(
            {
                "kind": "threshold",
                "d": d,
                "paper_2^-d": paper,
                "naive_3^-C(d,2)": straightforward,
                "gap_factor": paper / straightforward,
            }
        )
    return rows


def run_wedge_instances():
    """Instances between the criteria: P* solves, naive rejects.

    Cyclic triples with alphabet 3: each node has 3 hyperedges and
    dependency degree 4, so p = 3^-3 = 1/27 < 2^-4 = 1/16 (paper: OK)
    while the naive per-event bound demands p < 3^-3 (exactly violated).
    """
    rows = []
    for n in (9, 15, 21):
        instance = all_zero_triple_instance(n, cyclic_triples(n), 3)
        pstar_result = solve_rank3(instance)
        pstar_ok = verify_solution(instance, pstar_result.assignment).ok
        naive_rejects = False
        try:
            check_naive_criterion(
                all_zero_triple_instance(n, cyclic_triples(n), 3)
            )
        except CriterionViolationError:
            naive_rejects = True
        rows.append(
            {
                "kind": "wedge instance",
                "d": instance.max_dependency_degree,
                "n": n,
                "p": instance.max_event_probability,
                "pstar_solves": pstar_ok,
                "naive_rejects": naive_rejects,
            }
        )
    return rows


def run_naive_on_easy():
    """Sanity: when its criterion holds, the naive fixer also succeeds."""
    instance = all_zero_triple_instance(15, cyclic_triples(15), 28)
    # p = 28^-3 < 3^-3 = naive bound with 3 hyperedges per node.
    result = solve_naive(instance)
    return verify_solution(instance, result.assignment).ok


def test_naive_vs_pstar(benchmark, emit):
    rows, wall = _obs_harness.timed(
        lambda: benchmark.pedantic(
            lambda: run_threshold_gap() + run_wedge_instances(),
            rounds=1,
            iterations=1,
        )
    )
    naive_easy_ok = run_naive_on_easy()
    records = _obs_harness.rows_to_records("X2", rows, ("kind", "d"))
    records += _obs_harness.rows_to_records(
        "X2",
        [
            {
                "kind": "naive on its own turf",
                "d": 4,
                "naive_solves": naive_easy_ok,
            }
        ],
        ("kind", "d"),
    )
    emit(
        "X2",
        records,
        "Criterion gap: naive rank-r vs the paper's p < 2^-d",
        wall_seconds=wall,
    )

    # The gap grows super-exponentially with d.
    gaps = [row["gap_factor"] for row in rows if row["kind"] == "threshold"]
    assert all(later > earlier for earlier, later in zip(gaps, gaps[1:]))
    assert gaps[-1] > 1e6

    # In the wedge: P* solves everything, naive rejects everything.
    wedge = [row for row in rows if row["kind"] == "wedge instance"]
    assert all(row["pstar_solves"] for row in wedge)
    assert all(row["naive_rejects"] for row in wedge)
    assert naive_easy_ok
