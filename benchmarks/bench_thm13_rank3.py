"""[T3] Theorem 1.3: the rank-3 fixer succeeds under p*2^d < 1.

Sweeps rank-3 workloads (cyclic triples, partition rounds, the paper's
hypergraph-orientation application and biased distributions), fixing in
random orders and under the adaptive adversary, asserting 100% success,
property P* at every step (spot-checked via the final certified bounds)
and that the non-evil value promised by Lemma 3.2 existed at every step.
"""

from __future__ import annotations

import random

import _obs_harness
from repro.applications import hypergraph_sinkless_instance
from repro.core import (
    Rank3Fixer,
    max_pressure_chooser,
    run_with_adversary,
    solve_rank3,
)
from repro.generators import (
    all_zero_triple_instance,
    cyclic_triples,
    partition_rounds_triples,
)
from repro.lll import verify_solution

WORKLOADS = [
    (
        "cyclic triples n=30 k=5",
        lambda: all_zero_triple_instance(30, cyclic_triples(30), 5),
        True,
    ),
    (
        "cyclic triples n=30 k=8",
        lambda: all_zero_triple_instance(30, cyclic_triples(30), 8),
        True,
    ),
    (
        "partition rounds n=24 t=2 k=5",
        lambda: all_zero_triple_instance(
            24, partition_rounds_triples(24, 2, seed=4), 5
        ),
        "local",
    ),
    (
        "biased k=3 p0=0.1",
        lambda: all_zero_triple_instance(
            21, cyclic_triples(21), 3, probabilities=(0.1, 0.45, 0.45)
        ),
        True,
    ),
    (
        "hypergraph orientations n=18",
        lambda: hypergraph_sinkless_instance(18, cyclic_triples(18)),
        True,
    ),
]
ORDERS_PER_WORKLOAD = 3


def run_workload(factory, name, criterion):
    rng = random.Random(7)
    successes = 0
    attempts = 0
    min_good_fraction = 1.0
    max_bound = 0.0
    for _trial in range(ORDERS_PER_WORKLOAD):
        instance = factory()
        order = [v.name for v in instance.variables]
        rng.shuffle(order)
        result = solve_rank3(instance, order=order, require_criterion=criterion)
        attempts += 1
        if verify_solution(instance, result.assignment).ok:
            successes += 1
        max_bound = max(max_bound, result.max_certified_bound)
        if result.steps:
            min_good_fraction = min(
                min_good_fraction,
                min(
                    step.num_good_values / step.num_values
                    for step in result.steps
                ),
            )
    instance = factory()
    fixer = Rank3Fixer(instance, require_criterion=criterion)
    result = run_with_adversary(fixer, max_pressure_chooser)
    attempts += 1
    if verify_solution(instance, result.assignment).ok:
        successes += 1
    max_bound = max(max_bound, result.max_certified_bound)
    return {
        "workload": name,
        "runs": attempts,
        "successes": successes,
        "max_certified_bound": max_bound,
        "min_good_value_fraction": min_good_fraction,
    }


def run_all():
    return [
        run_workload(factory, name, criterion)
        for name, factory, criterion in WORKLOADS
    ]


def test_thm13_rank3(benchmark, emit):
    rows, wall = _obs_harness.timed(
        lambda: benchmark.pedantic(run_all, rounds=1, iterations=1)
    )
    records = _obs_harness.rows_to_records("T3", rows, ("workload",))
    emit(
        "T3",
        records,
        "Theorem 1.3: rank-3 fixer success across workloads",
        wall_seconds=wall,
    )

    for row in rows:
        assert row["successes"] == row["runs"]
        assert row["max_certified_bound"] < 1.0
        # Lemma 3.2: a non-evil value existed at every step.
        assert row["min_good_value_fraction"] > 0.0
