"""[A3] Application: Property B (hypergraph 2-coloring).

The Local Lemma's original application [EL74], run through the paper's
deterministic machinery: sparse k-uniform hypergraphs with node
occurrence <= 3 are 2-colored with no monochromatic edge, strictly below
the exponential threshold.  The sweep varies uniformity (hence the
distance to the threshold) and size, and cross-checks the domain-level
requirement on every run.
"""

from __future__ import annotations

from repro.analysis import ExperimentRecord
from repro.applications import (
    is_proper_two_coloring,
    property_b_instance,
    sparse_uniform_hypergraph,
)
from repro.applications.property_b import coloring_from_assignment
from repro.core import solve, solve_distributed
from repro.lll import verify_solution

UNIFORMITY_SWEEP = (6, 7, 9)
SIZE_SWEEP = (10, 20, 40)


def run_uniformity_sweep():
    rows = []
    for k in UNIFORMITY_SWEEP:
        shared = 2 if k < 9 else 3
        num_nodes, edges = sparse_uniform_hypergraph(
            num_edges=12, uniformity=k, shared_per_edge=shared, seed=k
        )
        instance = property_b_instance(num_nodes, edges)
        result = solve(instance)
        coloring = coloring_from_assignment(num_nodes, result.assignment)
        rows.append(
            {
                "sweep": "uniformity",
                "k": k,
                "edges": len(edges),
                "p": instance.max_event_probability,
                "threshold": 2.0**-instance.max_dependency_degree,
                "proper": is_proper_two_coloring(edges, coloring),
            }
        )
    return rows


def run_size_sweep():
    rows = []
    for num_edges in SIZE_SWEEP:
        num_nodes, edges = sparse_uniform_hypergraph(
            num_edges=num_edges, uniformity=6, shared_per_edge=2, seed=7
        )
        instance = property_b_instance(num_nodes, edges)
        result = solve_distributed(instance)
        ok = verify_solution(instance, result.assignment).ok
        coloring = coloring_from_assignment(num_nodes, result.assignment)
        rows.append(
            {
                "sweep": "size",
                "k": 6,
                "edges": num_edges,
                "p": instance.max_event_probability,
                "threshold": 2.0**-instance.max_dependency_degree,
                "proper": ok and is_proper_two_coloring(edges, coloring),
            }
        )
    return rows


def test_app_property_b(benchmark, emit):
    rows = benchmark.pedantic(
        lambda: run_uniformity_sweep() + run_size_sweep(),
        rounds=1,
        iterations=1,
    )
    records = [
        ExperimentRecord(
            "A3", {"sweep": row["sweep"], "k": row["k"]}, row
        )
        for row in rows
    ]
    emit("A3", records, "Application: Property B two-coloring")

    for row in rows:
        assert row["p"] < row["threshold"]
        assert row["proper"]
