"""[E4] Fault recovery: injected worker failures vs the serial oracle.

The fault-tolerant dispatch loop of ``ProcessScheduler`` promises two
things at once: under injected worker faults (crashes, hangs, slow
replies) the run recovers to the *bit-identical* serial transcript, and
on the fault-free path the recovery machinery costs (next to) nothing —
``fault_plan=None`` short-circuits every injection probe.  This bench
measures both.  Three timed configurations on the headline rank-3
workload:

* ``plain`` — no fault plan at all (the production fast path),
* ``inert-plan`` — a :class:`~repro.faults.FaultPlan` with every rate
  zero (the plumbing is live, nothing fires),
* ``crash+slow`` — a pinned first-chunk crash plus rate-drawn slow
  workers; the pool is rebuilt and the chunk retried.

Every configuration must produce the serial scheduler's exact
assignment, step trace and certified bounds, and the faulted run's
observability stream must pass :func:`repro.core.run_audit` — faults
without a recorded recovery fail the bench, not just the run.

Acceptance bars: the inert plan stays within ``INERT_OVERHEAD_CEILING``
of plain (the probe is one hash-free ``None`` check per chunk), and the
faulted run recovers (identity + audit) with its overhead reported.
Quick mode (``FAULT_BENCH_QUICK=1``, used by the CI fault-smoke job)
shrinks the workload and widens the timing ceiling.
"""

from __future__ import annotations

import os
import time

import _obs_harness
from repro.core import Rank3Fixer, run_audit
from repro.faults import FaultPlan
from repro.generators import all_zero_triple_instance, cyclic_triples
from repro.lll import verify_solution
from repro.obs.recorder import recording
from repro.runtime import ProcessScheduler, SerialScheduler
from repro.runtime.plan import plan_for_instance

QUICK = os.environ.get("FAULT_BENCH_QUICK") == "1"

#: Timing repetitions per configuration; the fastest is kept.
REPEATS = 2 if QUICK else 3

#: Allowed inert-plan slowdown over the plain fault-free path.  The
#: probe per chunk is a single ``worker_fault`` call returning ``None``;
#: the ceiling is dominated by process-pool timing noise, not the probe.
INERT_OVERHEAD_CEILING = 2.0 if QUICK else 1.5

#: Headline workload size (rank-3 cyclic triples, alphabet 8).
N = 48 if QUICK else 120

FAULTED_PLAN = FaultPlan(
    seed=7,
    explicit_chunks=((0, "crash"),),
    slow_rate=0.25,
    slow_seconds=0.001,
)

CONFIGURATIONS = [
    ("plain", lambda: None),
    ("inert-plan", lambda: FaultPlan(seed=7)),
    ("crash+slow", lambda: FAULTED_PLAN),
]


def _build_instance():
    return all_zero_triple_instance(N, cyclic_triples(N), 8)


def _execute(scheduler, capture_events=False):
    """One full plan execution on a fresh instance and fixer."""
    instance = _build_instance()
    plan = plan_for_instance(instance)
    fixer = Rank3Fixer(instance)
    _obs_harness.reset_engine([instance])
    events = None
    start = time.perf_counter()
    if capture_events:
        with recording() as recorder:
            scheduler.execute(fixer, plan, instance)
            events = list(recorder.memory.events)
    else:
        scheduler.execute(fixer, plan, instance)
    elapsed = time.perf_counter() - start
    return fixer.run(order=()), elapsed, instance, events


def _run_configuration(make_plan):
    """Best-of-``REPEATS`` execution; events captured on the last rep."""
    best_seconds = None
    result = instance = events = None
    for repetition in range(REPEATS):
        capture = repetition == REPEATS - 1
        scheduler = ProcessScheduler(
            max_workers=2,
            deadline=30.0,
            backoff_base=0.0,
            fault_plan=make_plan(),
        )
        result, elapsed, instance, events = _execute(
            scheduler, capture_events=capture
        )
        if best_seconds is None or elapsed < best_seconds:
            best_seconds = elapsed
    return result, best_seconds, instance, events


def run_fault_recovery():
    reference, _, _, _ = _execute(SerialScheduler())
    rows = []
    plain_seconds = None
    for name, make_plan in CONFIGURATIONS:
        result, seconds, instance, events = _run_configuration(make_plan)
        identical = (
            result.assignment.as_dict() == reference.assignment.as_dict()
            and result.steps == reference.steps
            and result.certified_bounds == reference.certified_bounds
        )
        audit = run_audit(instance, result, fault_events=events)
        fault_count = sum(
            1
            for event in events
            if event["component"] == "runtime" and event["event"] == "fault"
        )
        if name == "plain":
            plain_seconds = seconds
        rows.append(
            {
                "configuration": name,
                "n": N,
                "best_seconds": round(seconds, 6),
                "overhead_vs_plain": (
                    round(seconds / plain_seconds, 3)
                    if plain_seconds
                    else None
                ),
                "faults_observed": fault_count,
                "identical_to_serial": identical,
                "audit_ok": audit.ok,
                "valid": verify_solution(
                    _build_instance(), result.assignment
                ).ok,
            }
        )
    return rows


def test_fault_recovery(benchmark, emit):
    rows, wall = _obs_harness.timed(
        lambda: benchmark.pedantic(run_fault_recovery, rounds=1, iterations=1)
    )
    records = _obs_harness.rows_to_records(
        "E4", rows, parameter_keys=("configuration",)
    )
    emit(
        "E4",
        records,
        "Fault recovery: injected worker failures vs serial",
        wall_seconds=wall,
    )

    by_name = {row["configuration"]: row for row in rows}
    for row in rows:
        assert row["valid"], f"invalid solution under {row['configuration']}"
        assert row["identical_to_serial"], (
            f"{row['configuration']} diverged from the serial transcript"
        )
        assert row["audit_ok"], (
            f"{row['configuration']} failed post-recovery audit"
        )
    assert by_name["crash+slow"]["faults_observed"] > 0, (
        "faulted configuration observed no faults — injection is dead"
    )
    inert = by_name["inert-plan"]["overhead_vs_plain"]
    assert inert is not None and inert <= INERT_OVERHEAD_CEILING, (
        f"inert fault plan costs {inert}x over plain "
        f"(ceiling {INERT_OVERHEAD_CEILING}x)"
    )
