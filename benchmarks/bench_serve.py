"""[E9] The solve service: cold vs warm request latency over one server.

The load generator behind ``docs/serving.md``: one in-process
:class:`~repro.serve.SolveServer` on a persistent process scheduler,
driven over real HTTP by the keep-alive :class:`~repro.serve.ServeClient`.
Two phases against the same server:

* **cold** — ``POST /v1/cache/clear`` before every sample, so each
  request pays instance build + kernel/template/plan construction +
  the full scheduled solve (the artifact plane is empty; the pool and
  shm segment stay warm — that part of the stack is E8's subject);
* **warm** — the steady state the service exists for: the ``solutions``
  tier answers from the memoized response, so a request is one cache
  probe plus JSON shaping.

Acceptance (the ISSUE 10 floors):

* warm hit rate >= 0.9 (``hit_rate_ok``),
* warm p50 at least 5x faster than cold p50 (``speedup_warm_p50``;
  quick mode keeps a reduced floor),
* served results bit-identical to an in-process serial-scheduler solve
  (``identical_to_inprocess``),
* zero leaked shm segments after drain (``no_leaked_segments``).

Quick mode (``SERVE_BENCH_QUICK=1``, the CI perf-gate leg) shrinks the
workload and the sample counts but keeps every boolean invariant.
"""

from __future__ import annotations

import asyncio
import glob
import json
import os
import threading
import time

import _obs_harness
from repro.core.sequential import solve
from repro.generators import build_family_instance
from repro.lll.io import _encode_name
from repro.runtime import live_segment_names
from repro.runtime.schedulers import make_scheduler
from repro.serve import ServeClient, ServeConfig, SolveServer

QUICK = os.environ.get("SERVE_BENCH_QUICK") == "1"

#: The headline workload: the E8 rank-3 family at a serving-friendly
#: size (one request = one full scheduled solve, tens of ms, so the
#: phases measure request handling rather than minutes of fixing).
N = 60 if QUICK else 240
ALPHABET = 8
WORKLOAD = f"triples n={N} k={ALPHABET}" + (" (quick)" if QUICK else "")
PAYLOAD = {"family": "triples", "n": N, "alphabet": ALPHABET}

COLD_SAMPLES = 3 if QUICK else 5
WARM_SAMPLES = 10 if QUICK else 50

#: warm p50 vs cold p50.  The solutions tier turns a warm request into
#: one cache probe, so the full floor is conservative by orders of
#: magnitude; quick keeps a reduced floor for CI-box jitter.
SPEEDUP_FLOOR = 3.0 if QUICK else 5.0

HIT_RATE_FLOOR = 0.9


class _ServerThread:
    """An in-process server on its own event loop thread."""

    def __init__(self) -> None:
        self.config = ServeConfig(
            port=0,
            scheduler="process",
            workers=2,
            deadline_s=600.0,
        )
        self._loop = asyncio.new_event_loop()
        self._started = threading.Event()
        self.server = None
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        if not self._started.wait(timeout=60):
            raise RuntimeError("bench server failed to start")

    def _run(self) -> None:
        asyncio.set_event_loop(self._loop)
        self.server = SolveServer(self.config)
        self._loop.run_until_complete(self.server.start())
        self._started.set()
        self._loop.run_forever()

    def client(self) -> ServeClient:
        return ServeClient(self.config.host, self.server.port, timeout=600)

    def drain_and_stop(self) -> None:
        future = asyncio.run_coroutine_threadsafe(
            self.server.drain(), self._loop
        )
        future.result(timeout=120)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=30)
        self._loop.close()


def _percentile(samples, q):
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(q / 100.0 * (len(ordered) - 1))))
    return ordered[index]


def _reference_result():
    """The differential oracle: in-process solve on the serial plan."""
    instance = build_family_instance("triples", N, alphabet=ALPHABET)
    result = solve(instance, scheduler=make_scheduler("serial"))

    def pairs(items):
        encoded = [[_encode_name(name), value] for name, value in items]
        encoded.sort(key=lambda pair: json.dumps(pair[0], sort_keys=True))
        return encoded

    return {
        "steps": result.num_steps,
        "min_slack": result.min_slack,
        "max_certified_bound": result.max_certified_bound,
        "verified": True,
        "assignment": pairs(result.assignment.items()),
        "certified_bounds": pairs(result.certified_bounds.items()),
    }


def _phase(client, samples, clear_before_each):
    """Drive one phase; returns (latencies_ms, responses, wall_seconds)."""
    latencies = []
    responses = []
    start = time.perf_counter()
    for _ in range(samples):
        if clear_before_each:
            status, _body = client.request("POST", "/v1/cache/clear")
            assert status == 200
        t0 = time.perf_counter()
        status, body = client.solve(PAYLOAD)
        latencies.append((time.perf_counter() - t0) * 1000.0)
        assert status == 200 and body["ok"], body
        responses.append(body)
    return latencies, responses, time.perf_counter() - start


def run_serve_bench():
    reference = _reference_result()
    server = _ServerThread()
    rows = []
    try:
        client = server.client()
        # One untimed request pays the pool spawn + segment broadcast,
        # so "cold" below means artifact-cold against a warm scheduler.
        status, body = client.solve(PAYLOAD)
        assert status == 200 and body["ok"], body

        cold_ms, cold_bodies, cold_wall = _phase(
            client, COLD_SAMPLES, clear_before_each=True
        )
        # Prime the caches once, then measure pure warm traffic.
        client.solve(PAYLOAD)
        warm_ms, warm_bodies, warm_wall = _phase(
            client, WARM_SAMPLES, clear_before_each=False
        )

        hits = sum(body["cache"]["hits"] for body in warm_bodies)
        misses = sum(body["cache"]["misses"] for body in warm_bodies)
        hit_rate = hits / (hits + misses) if hits + misses else 0.0
        identical = all(
            body["result"] == reference
            for body in cold_bodies + warm_bodies
        )

        status, stats = client.request("GET", "/v1/stats")
        assert status == 200 and stats["ok"]
        client.close()
    finally:
        server.drain_and_stop()

    leaked = tuple(live_segment_names()) + tuple(
        glob.glob(f"/dev/shm/repro_shm_{os.getpid()}_*")
    )

    cold_p50 = _percentile(cold_ms, 50)
    warm_p50 = _percentile(warm_ms, 50)
    rows.append({
        "workload": WORKLOAD,
        "phase": "cold",
        "samples": COLD_SAMPLES,
        "p50_ms": round(cold_p50, 3),
        "p99_ms": round(_percentile(cold_ms, 99), 3),
        "requests_per_second": round(COLD_SAMPLES / cold_wall, 3),
        "ok": True,
    })
    rows.append({
        "workload": WORKLOAD,
        "phase": "warm",
        "samples": WARM_SAMPLES,
        "p50_ms": round(warm_p50, 3),
        "p99_ms": round(_percentile(warm_ms, 99), 3),
        "requests_per_second": round(WARM_SAMPLES / warm_wall, 3),
        "ok": True,
    })
    rows.append({
        "workload": WORKLOAD,
        "phase": "summary",
        "speedup_warm_p50": round(cold_p50 / warm_p50, 3),
        "hit_rate": round(hit_rate, 4),
        "hit_rate_ok": hit_rate >= HIT_RATE_FLOOR,
        "identical_to_inprocess": identical,
        "no_leaked_segments": not leaked,
        "deadline_exceeded": float(stats["deadline_exceeded"]),
        "rejections": float(stats["rejections"]),
        "errors": float(stats["errors"]),
        "ok": True,
    })
    return rows


def test_serve(benchmark, emit):
    rows, wall = _obs_harness.timed(lambda: benchmark.pedantic(
        run_serve_bench, rounds=1, iterations=1
    ))
    records = _obs_harness.rows_to_records(
        "E9", rows, parameter_keys=("workload", "phase")
    )
    emit(
        "E9",
        records,
        "Solve service: cold vs warm request latency",
        wall_seconds=wall,
    )

    summary = next(row for row in rows if row["phase"] == "summary")
    assert summary["hit_rate_ok"], (
        f"warm hit rate {summary['hit_rate']} below the "
        f"{HIT_RATE_FLOOR} floor"
    )
    assert summary["identical_to_inprocess"], (
        "a served response diverged from the in-process serial solve"
    )
    assert summary["no_leaked_segments"], (
        "the drained server left shm segments behind"
    )
    assert summary["errors"] == 0, "the server reported request errors"
    assert summary["speedup_warm_p50"] >= SPEEDUP_FLOOR, (
        f"warm p50 only {summary['speedup_warm_p50']}x faster than cold, "
        f"below the {SPEEDUP_FLOOR}x floor"
    )
