"""[X3] The message-level LOCAL protocol vs. the scheduled simulation.

Corollary 1.4's algorithm can be executed at two levels of fidelity in
this library: the high-level scheduler (``solve_distributed``, which
iterates color classes and charges one round each) and the message-level
protocol (``solve_distributed_local``, where nodes exchange actual state
and commit messages, two rounds per class).  Both must solve the same
workloads; the protocol's schedule cost is exactly twice the palette,
and its round count stays flat in n — the corollary's shape survives the
drop to real messages.
"""

from __future__ import annotations

from repro.analysis import ExperimentRecord
from repro.core import solve_distributed, solve_distributed_local
from repro.generators import all_zero_triple_instance, cyclic_triples
from repro.lll import verify_solution
from repro.obs import active as obs_active

N_SWEEP = (36, 108, 324, 648)


def run_comparison():
    rows = []
    for n in N_SWEEP:
        scheduler_instance = all_zero_triple_instance(n, cyclic_triples(n), 5)
        scheduler = solve_distributed(scheduler_instance)
        scheduler_ok = verify_solution(
            scheduler_instance, scheduler.assignment
        ).ok

        protocol_instance = all_zero_triple_instance(n, cyclic_triples(n), 5)
        protocol = solve_distributed_local(protocol_instance)
        protocol_ok = verify_solution(
            protocol_instance, protocol.assignment
        ).ok

        messages_total = sum(protocol.round_messages)
        messages_peak_round = max(protocol.round_messages, default=0)
        payload_chars_total = sum(protocol.round_payload_chars)
        recorder = obs_active()
        if recorder is not None:
            recorder.event(
                "bench",
                "protocol_messages",
                n=n,
                rounds=protocol.schedule_rounds,
                messages_total=messages_total,
                messages_peak_round=messages_peak_round,
                payload_chars_total=payload_chars_total,
            )
            recorder.count("bench", "protocol_messages", messages_total)
            recorder.count(
                "bench", "protocol_payload_chars", payload_chars_total
            )

        rows.append(
            {
                "n": n,
                "scheduler_ok": scheduler_ok,
                "protocol_ok": protocol_ok,
                "palette": protocol.palette,
                "scheduler_schedule_rounds": scheduler.schedule_rounds,
                "protocol_schedule_rounds": protocol.schedule_rounds,
                "protocol_total_rounds": protocol.total_rounds,
                "messages_total": messages_total,
                "messages_peak_round": messages_peak_round,
                "payload_chars_total": payload_chars_total,
            }
        )
    return rows


def test_local_protocol(benchmark, emit):
    rows = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    records = [ExperimentRecord("X3", {"n": row["n"]}, row) for row in rows]
    emit("X3", records, "Message-level protocol vs scheduled simulation")

    for row in rows:
        assert row["scheduler_ok"]
        assert row["protocol_ok"]
        # Two real rounds per color class, exactly.
        assert row["protocol_schedule_rounds"] == 2 * row["palette"]
        # Real messages flowed, and no round exceeded the total.
        assert row["messages_total"] > 0
        assert 0 < row["messages_peak_round"] <= row["messages_total"]
        assert row["payload_chars_total"] > 0

    totals = [row["protocol_total_rounds"] for row in rows]
    # Flat tail in n (the log* regime), same as the scheduler.
    assert totals[-1] == totals[-2]
