"""[L1] The Variable Fixing Lemma (Lemma 3.2), statistically.

Lemma 3.2 promises: while property P* holds, every random variable has at
least one non-evil value.  This bench instruments every fixing step across
a batch of rank-3 runs and reports (a) the fraction of steps where a
non-evil value existed (must be exactly 1.0), (b) the distribution of how
many candidate values were good, and (c) the distribution of the margin
(slack inside S_rep) of the chosen value.
"""

from __future__ import annotations

import random
import statistics

from repro.analysis import ExperimentRecord
from repro.applications import hypergraph_sinkless_instance
from repro.core import solve_rank3
from repro.generators import (
    all_zero_triple_instance,
    cyclic_triples,
    partition_rounds_triples,
)

RUNS_PER_WORKLOAD = 5


def _collect(instance_factory, criterion=True):
    rng = random.Random(11)
    steps_total = 0
    steps_with_good_value = 0
    good_fractions = []
    slacks = []
    for _run in range(RUNS_PER_WORKLOAD):
        instance = instance_factory()
        order = [v.name for v in instance.variables]
        rng.shuffle(order)
        result = solve_rank3(
            instance, order=order, require_criterion=criterion
        )
        for step in result.steps:
            steps_total += 1
            if step.num_good_values >= 1:
                steps_with_good_value += 1
            good_fractions.append(step.num_good_values / step.num_values)
            slacks.append(step.slack)
    return {
        "steps": steps_total,
        "good_value_rate": steps_with_good_value / steps_total,
        "mean_good_fraction": statistics.mean(good_fractions),
        "min_good_fraction": min(good_fractions),
        "mean_slack": statistics.mean(slacks),
        "min_slack": min(slacks),
    }


WORKLOADS = [
    (
        "cyclic k=5",
        lambda: all_zero_triple_instance(21, cyclic_triples(21), 5),
        True,
    ),
    (
        "cyclic k=6 biased",
        lambda: all_zero_triple_instance(
            21, cyclic_triples(21), 6,
            probabilities=(0.05, 0.25, 0.25, 0.2, 0.15, 0.1),
        ),
        True,
    ),
    (
        "partition t=2 k=5",
        lambda: all_zero_triple_instance(
            18, partition_rounds_triples(18, 2, seed=5), 5
        ),
        "local",
    ),
    (
        "hypergraph orientation",
        lambda: hypergraph_sinkless_instance(15, cyclic_triples(15)),
        True,
    ),
]


def run_all():
    rows = []
    for name, factory, criterion in WORKLOADS:
        row = _collect(factory, criterion)
        row["workload"] = name
        rows.append(row)
    return rows


def test_lemma32_fixing(benchmark, emit):
    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    records = [
        ExperimentRecord("L1", {"workload": row["workload"]}, row)
        for row in rows
    ]
    emit("L1", records, "Lemma 3.2: non-evil values exist at every step")

    for row in rows:
        # The lemma's guarantee, observed: a good value at EVERY step.
        assert row["good_value_rate"] == 1.0
        assert row["min_good_fraction"] > 0.0
        assert row["min_slack"] >= 0.0
